//! The five servers of the paper's evaluation (§4), re-implemented in
//! MiniC with their documented memory errors, plus request drivers.
//!
//! Each module contains:
//!
//! * the MiniC source of the server, written so the vulnerable code path
//!   matches the paper's description (Mutt's `utf8_to_utf7` is
//!   transliterated from Figure 1);
//! * a Rust driver that boots the server under a chosen [`Mode`], feeds it
//!   legitimate and attack requests, and classifies outcomes;
//! * unit tests asserting the paper's qualitative results per mode.
//!
//! The drivers model one OS process per [`foc_vm::Machine`]: a fault kills
//! the process and all its state; `restart` builds a fresh machine and
//! replays initialisation (which may itself fault — the Pine/Mutt/MC
//! situation where the Bounds Check version dies during startup, §4.7).

pub mod apache;
pub mod conn;
pub mod farm;
pub mod image;
pub mod latency;
pub mod mc;
pub mod mutt;
pub mod pine;
pub mod sendmail;
pub mod steal;
pub mod supervisor;
pub mod sweep;
pub mod workload;

pub use image::ServerKind;

pub use foc_compiler::ExecTier;

use foc_compiler::ProgramImage;
use foc_memory::{LookupLayer, Mode, TableKind, ValueSequence};
use foc_vm::{Machine, MachineConfig, VmFault};

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The server processed the request; `ret` is its status code and
    /// `output` what it wrote.
    Done {
        /// Guest return value.
        ret: i64,
        /// Bytes the guest emitted while serving the request.
        output: Vec<u8>,
    },
    /// The server process died (segfault, memory-error exit, abort...).
    Crashed(VmFault),
}

impl Outcome {
    /// Whether the request completed without killing the process.
    pub fn survived(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }

    /// Return code, when the process survived.
    pub fn ret(&self) -> Option<i64> {
        match self {
            Outcome::Done { ret, .. } => Some(*ret),
            Outcome::Crashed(_) => None,
        }
    }

    /// Output bytes, when the process survived.
    pub fn output(&self) -> &[u8] {
        match self {
            Outcome::Done { output, .. } => output,
            Outcome::Crashed(_) => &[],
        }
    }
}

/// A measured request: outcome plus virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measured {
    /// What happened.
    pub outcome: Outcome,
    /// Virtual cycles charged to this request.
    pub cycles: u64,
}

/// A guest address handed out by the driver-side allocator
/// ([`Process::guest_str`]), typed so the alloc/arg/free round-trip
/// can't silently mix addresses with ordinary guest integers or lose
/// bits in unchecked casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuestAddr(u64);

impl GuestAddr {
    /// Wraps a raw guest address.
    ///
    /// # Panics
    ///
    /// Panics when the address does not fit the guest calling
    /// convention's `i64` argument slot (the memory map never hands out
    /// such addresses; one here is a harness bug).
    pub fn new(raw: u64) -> GuestAddr {
        assert!(
            i64::try_from(raw).is_ok(),
            "guest address {raw:#x} overflows the i64 argument slot"
        );
        GuestAddr(raw)
    }

    /// The raw address (for direct [`Machine`] APIs).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The address as a guest call argument. Infallible by the
    /// [`GuestAddr::new`] invariant.
    pub fn arg(self) -> i64 {
        self.0 as i64
    }
}

/// Everything that decides how one guest server process is built: the
/// four axes of the mode search-space sweep in one place. `boot_table`
/// and friends remain as conveniences over the two-axis subset; the
/// sweep constructs full specs and hands them to the drivers'
/// `boot_spec` constructors. `Hash` because the spec is half of the
/// boot-checkpoint cache key (see [`image::boot_checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BootSpec {
    /// Access policy.
    pub mode: Mode,
    /// Object-table backend.
    pub table: TableKind,
    /// Manufactured-value strategy for invalid reads.
    pub sequence: ValueSequence,
    /// Per-call instruction budget.
    pub fuel: u64,
    /// Execution tier of the booted image (baseline vs fused
    /// superinstructions). Part of the cache key: fused and unfused
    /// boots never alias in the checkpoint cache, matching their
    /// distinct [`foc_compiler::ProgramId`]s.
    pub tier: ExecTier,
    /// In-bounds lookup layer of the booted space (page map vs direct
    /// table search). Part of the cache key: a cached checkpoint carries
    /// its page map, so paged and table boots never alias.
    pub lookup: LookupLayer,
}

impl BootSpec {
    /// A spec for `kind` under `mode` with the remaining axes at their
    /// session defaults: the paper's cycling sequence, the kind's
    /// standard fuel budget, and the three environment axes — table
    /// backend from `FOC_TABLE`, execution tier from `FOC_EXEC_TIER`,
    /// lookup layer from `FOC_LOOKUP` (each defaulting when unset).
    /// Unknown env values exit the process with a one-line diagnostic;
    /// use [`BootSpec::from_env`] to get the error as a value instead.
    pub fn new(kind: ServerKind, mode: Mode) -> BootSpec {
        BootSpec {
            mode,
            table: TableKind::from_env(),
            sequence: ValueSequence::default(),
            fuel: kind.fuel(),
            tier: ExecTier::from_env(),
            lookup: LookupLayer::from_env(),
        }
    }

    /// The strict, fallible twin of [`BootSpec::new`]: reads the same
    /// three environment axes (`FOC_EXEC_TIER`, `FOC_LOOKUP`,
    /// `FOC_TABLE`) in one place and returns the first configuration
    /// error as a typed [`EnvError`] instead of exiting — the single
    /// entry the bench binaries and CI read session config through, so
    /// an unknown value surfaces as one uniform diagnostic no matter
    /// which axis it hit.
    pub fn from_env(kind: ServerKind, mode: Mode) -> Result<BootSpec, EnvError> {
        BootSpec::from_env_with(kind, mode, |var| std::env::var(var).ok())
    }

    /// [`BootSpec::from_env`] over an arbitrary variable source, so the
    /// unknown-value matrix is unit-testable without mutating the
    /// process environment.
    fn from_env_with(
        kind: ServerKind,
        mode: Mode,
        get: impl Fn(&str) -> Option<String>,
    ) -> Result<BootSpec, EnvError> {
        fn axis<T>(get: &impl Fn(&str) -> Option<String>, var: &'static str) -> Result<T, EnvError>
        where
            T: Default + std::str::FromStr<Err = String>,
        {
            match get(var) {
                Some(value) => value
                    .parse()
                    .map_err(|detail| EnvError { var, value, detail }),
                None => Ok(T::default()),
            }
        }
        Ok(BootSpec {
            mode,
            table: axis(&get, foc_memory::TABLE_ENV)?,
            sequence: ValueSequence::default(),
            fuel: kind.fuel(),
            tier: axis(&get, foc_compiler::EXEC_TIER_ENV)?,
            lookup: axis(&get, foc_memory::LOOKUP_ENV)?,
        })
    }

    /// Same spec on a different object-table backend.
    pub fn with_table(mut self, table: TableKind) -> BootSpec {
        self.table = table;
        self
    }

    /// Same spec with a different manufactured-value strategy.
    pub fn with_sequence(mut self, sequence: ValueSequence) -> BootSpec {
        self.sequence = sequence;
        self
    }

    /// Same spec with a different per-call instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> BootSpec {
        self.fuel = fuel;
        self
    }

    /// Same spec on a different execution tier.
    pub fn with_tier(mut self, tier: ExecTier) -> BootSpec {
        self.tier = tier;
        self
    }

    /// Same spec on a different in-bounds lookup layer.
    pub fn with_lookup(mut self, lookup: LookupLayer) -> BootSpec {
        self.lookup = lookup;
        self
    }
}

/// A rejected environment value from [`BootSpec::from_env`]: which
/// variable, what it held, and the parser's diagnostic (which lists the
/// accepted spellings). One error type for all three config axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The rejected value.
    pub value: String,
    /// Why it was rejected, with the valid spellings.
    pub detail: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.detail)
    }
}

impl std::error::Error for EnvError {}

/// Cap on pooled scratch buffers per process (a driver never has more
/// than a handful of request strings in flight at once).
const SCRATCH_POOL: usize = 4;

/// A frozen [`Process`]: a machine checkpoint plus the boot spec it was
/// built from. Restoring one yields a process byte-identical to the one
/// captured — the unit the per-server boot-checkpoint cache stores and
/// the restart paths restore from.
#[derive(Clone)]
pub struct ProcessCheckpoint {
    machine: foc_vm::Checkpoint,
    spec: BootSpec,
}

impl ProcessCheckpoint {
    /// The boot spec of the captured process.
    pub fn spec(&self) -> &BootSpec {
        &self.spec
    }
}

/// Shared plumbing: one guest process running a compiled server.
pub struct Process {
    machine: Machine,
    spec: BootSpec,
    /// Reusable host-side byte buffers for building request content;
    /// taken with [`Process::scratch`], returned with
    /// [`Process::recycle`] so per-request `Vec` churn stays off the
    /// host allocator at farm scale.
    scratch: Vec<Vec<u8>>,
}

impl Process {
    /// Legacy convenience over [`Process::boot_spec`] with the session
    /// defaults on the table/tier/lookup axes; prefer constructing a
    /// [`BootSpec`] at the call site.
    ///
    /// # Panics
    ///
    /// Panics when the image fails to load (global region exhaustion —
    /// a harness bug, since the server images are fixed).
    pub fn boot(image: &ProgramImage, mode: Mode, fuel: u64) -> Process {
        Process::boot_table(image, mode, TableKind::from_env(), fuel)
    }

    /// Legacy convenience over [`Process::boot_spec`] for the
    /// mode × table subset; prefer constructing a [`BootSpec`] at the
    /// call site.
    ///
    /// # Panics
    ///
    /// Panics when the image fails to load, as [`Process::boot`].
    pub fn boot_table(image: &ProgramImage, mode: Mode, table: TableKind, fuel: u64) -> Process {
        Process::boot_spec(
            image,
            &BootSpec {
                mode,
                table,
                sequence: ValueSequence::default(),
                fuel,
                tier: ExecTier::from_env(),
                lookup: LookupLayer::from_env(),
            },
        )
    }

    /// Boots a shared compiled image from a full [`BootSpec`] — every
    /// sweep axis (mode, table backend, value sequence, fuel budget,
    /// execution tier, lookup layer) decided by the caller. This is the
    /// one canonical construction path: every other constructor, here
    /// and in the five drivers, is a thin forwarder into it. The farm's
    /// hot path too: no compilation, just globals/strings allocation —
    /// restarts and pool respawns reuse the interned image.
    ///
    /// # Panics
    ///
    /// Panics when the image fails to load, as [`Process::boot`].
    pub fn boot_spec(image: &ProgramImage, spec: &BootSpec) -> Process {
        let config = MachineConfig {
            mem: foc_memory::MemConfig::with_mode(spec.mode)
                .with_table(spec.table)
                .with_sequence(spec.sequence)
                .with_lookup(spec.lookup),
            fuel_per_call: spec.fuel,
        };
        let machine = match Machine::load(image.clone(), config) {
            Ok(m) => m,
            Err(e) => panic!("server image failed to load: {e}"),
        };
        Process {
            machine,
            spec: *spec,
            scratch: Vec::new(),
        }
    }

    /// Legacy convenience: compiles `source` cold and boots it through
    /// [`Process::boot`] — the pre-interning path, kept for one-off
    /// programs and as the differential baseline the image-sharing
    /// property tests compare against.
    ///
    /// # Panics
    ///
    /// Panics when the source fails to compile.
    pub fn boot_source(source: &str, mode: Mode, fuel: u64) -> Process {
        let image = match foc_compiler::compile_image(source) {
            Ok(image) => image,
            Err(e) => panic!("server source failed to build: {e}"),
        };
        Process::boot(&image, mode, fuel)
    }

    /// Freezes this process's current state (machine plus spec) for
    /// later restoration. Captured once after a standard boot, a
    /// checkpoint turns every subsequent supervised restart into a
    /// memcpy instead of a boot-plus-environment replay.
    pub fn checkpoint(&self) -> ProcessCheckpoint {
        ProcessCheckpoint {
            machine: self.machine.checkpoint(),
            spec: self.spec,
        }
    }

    /// Materialises a fresh process in exactly the captured state (the
    /// host-side scratch pool starts empty — it never affects guest
    /// state).
    pub fn restore(ckpt: &ProcessCheckpoint) -> Process {
        Process {
            machine: ckpt.machine.restore(),
            spec: ckpt.spec,
            scratch: Vec::new(),
        }
    }

    /// The policy this process runs under.
    pub fn mode(&self) -> Mode {
        self.spec.mode
    }

    /// The object-table backend this process runs on.
    pub fn table(&self) -> TableKind {
        self.spec.table
    }

    /// The full boot spec this process was built from.
    pub fn spec(&self) -> &BootSpec {
        &self.spec
    }

    /// Takes a cleared reusable byte buffer from the process's scratch
    /// pool (allocating only when the pool is dry). Pair with
    /// [`Process::recycle`]; the take/return shape sidesteps borrow
    /// conflicts with the `&mut self` request methods.
    pub fn scratch(&mut self) -> Vec<u8> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool, keeping its capacity for
    /// the next request.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.scratch.len() < SCRATCH_POOL {
            buf.clear();
            self.scratch.push(buf);
        }
    }

    /// The fuel budget per call.
    pub fn fuel(&self) -> u64 {
        self.spec.fuel
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (drivers push inputs, read state).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Whether the process has died.
    pub fn is_dead(&self) -> bool {
        self.machine.is_dead()
    }

    /// Calls a guest entry point, measuring the cycles it consumed.
    pub fn request(&mut self, func: &str, args: &[i64]) -> Measured {
        let before = self.machine.stats().cycles;
        let result = self.machine.call(func, args);
        let cycles = self.machine.stats().cycles - before;
        let outcome = match result {
            Ok(ret) => Outcome::Done {
                ret,
                output: self.machine.take_output(),
            },
            Err(fault) => Outcome::Crashed(fault),
        };
        Measured { outcome, cycles }
    }

    /// Copies a byte string into the guest heap, NUL-terminated,
    /// returning the typed address for the call/free round-trip.
    ///
    /// # Panics
    ///
    /// Panics when the guest heap is exhausted (drivers allocate tiny
    /// request strings; exhaustion indicates a harness bug).
    pub fn guest_str(&mut self, bytes: &[u8]) -> GuestAddr {
        GuestAddr::new(
            self.machine
                .alloc_cstring(bytes)
                .expect("guest heap exhausted"),
        )
    }

    /// Frees a driver-allocated guest string.
    pub fn free_guest_str(&mut self, addr: GuestAddr) {
        // Tolerate failure: freeing after a fault is pointless anyway.
        let _ = self.machine.free_guest(addr.raw());
    }
}

/// Mean and sample standard deviation of a series.
pub fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stddev_basics() {
        let (m, s) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(mean_stddev(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn boot_spec_from_env_defaults_when_unset() {
        let spec =
            BootSpec::from_env_with(ServerKind::Pine, Mode::FailureOblivious, |_| None).unwrap();
        assert_eq!(spec.tier, ExecTier::Baseline);
        assert_eq!(spec.lookup, LookupLayer::Table);
        assert_eq!(spec.table, TableKind::Splay);
        assert_eq!(spec.mode, Mode::FailureOblivious);
        assert_eq!(spec.fuel, ServerKind::Pine.fuel());
        assert_eq!(spec.sequence, ValueSequence::default());
    }

    #[test]
    fn boot_spec_from_env_parses_every_valid_spelling() {
        for tier in ExecTier::ALL {
            for lookup in LookupLayer::ALL {
                for table in [
                    TableKind::Splay,
                    TableKind::BTree,
                    TableKind::Flat,
                    TableKind::Auto,
                ] {
                    // Upper-case to pin case-insensitivity on all axes.
                    let vals = [
                        (foc_compiler::EXEC_TIER_ENV, tier.label().to_uppercase()),
                        (foc_memory::LOOKUP_ENV, lookup.name().to_uppercase()),
                        (foc_memory::TABLE_ENV, table.name().to_uppercase()),
                    ];
                    let spec = BootSpec::from_env_with(ServerKind::Mutt, Mode::Standard, |var| {
                        vals.iter().find(|(v, _)| *v == var).map(|(_, s)| s.clone())
                    })
                    .unwrap();
                    assert_eq!((spec.tier, spec.lookup, spec.table), (tier, lookup, table));
                }
            }
        }
    }

    #[test]
    fn boot_spec_from_env_rejects_unknown_values_on_every_axis() {
        for (var, value) in [
            (foc_compiler::EXEC_TIER_ENV, "turbo"),
            (foc_compiler::EXEC_TIER_ENV, ""),
            (foc_memory::LOOKUP_ENV, "hashed"),
            (foc_memory::LOOKUP_ENV, "paged "),
            (foc_memory::TABLE_ENV, "rbtree"),
            (foc_memory::TABLE_ENV, "splay,btree"),
        ] {
            let err = BootSpec::from_env_with(ServerKind::Sendmail, Mode::BoundsCheck, |v| {
                (v == var).then(|| value.to_string())
            })
            .expect_err("unknown value must be rejected");
            assert_eq!(err.var, var);
            assert_eq!(err.value, value);
            assert!(
                err.detail.contains("unknown"),
                "diagnostic names the problem: {}",
                err.detail
            );
            let shown = err.to_string();
            assert!(
                shown.contains(var) && shown.contains(&format!("{value:?}")),
                "display carries variable and value: {shown}"
            );
        }
    }

    #[test]
    fn boot_spec_from_env_reports_the_axis_that_failed_first() {
        // Two bad axes: the error must be attributed to one of them
        // (the table axis is read first), never mixed.
        let err = BootSpec::from_env_with(ServerKind::Mc, Mode::Standard, |var| {
            Some(match var {
                v if v == foc_memory::TABLE_ENV => "cuckoo".to_string(),
                _ => "bogus".to_string(),
            })
        })
        .expect_err("bad config must be rejected");
        assert_eq!(err.var, foc_memory::TABLE_ENV);
        assert_eq!(err.value, "cuckoo");
    }

    #[test]
    fn process_boot_and_request() {
        let mut p = Process::boot_source(
            "int n = 0; int bump() { n++; return n; }",
            Mode::FailureOblivious,
            1_000_000,
        );
        let r1 = p.request("bump", &[]);
        assert_eq!(r1.outcome.ret(), Some(1));
        assert!(r1.cycles > 0);
        let r2 = p.request("bump", &[]);
        assert_eq!(r2.outcome.ret(), Some(2));
    }
}
