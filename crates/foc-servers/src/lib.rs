//! The five servers of the paper's evaluation (§4), re-implemented in
//! MiniC with their documented memory errors, plus request drivers.
//!
//! Each module contains:
//!
//! * the MiniC source of the server, written so the vulnerable code path
//!   matches the paper's description (Mutt's `utf8_to_utf7` is
//!   transliterated from Figure 1);
//! * a Rust driver that boots the server under a chosen [`Mode`], feeds it
//!   legitimate and attack requests, and classifies outcomes;
//! * unit tests asserting the paper's qualitative results per mode.
//!
//! The drivers model one OS process per [`foc_vm::Machine`]: a fault kills
//! the process and all its state; `restart` builds a fresh machine and
//! replays initialisation (which may itself fault — the Pine/Mutt/MC
//! situation where the Bounds Check version dies during startup, §4.7).

pub mod apache;
pub mod farm;
pub mod mc;
pub mod mutt;
pub mod pine;
pub mod sendmail;
pub mod supervisor;
pub mod workload;

use foc_memory::Mode;
use foc_vm::{Machine, MachineConfig, VmFault};

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The server processed the request; `ret` is its status code and
    /// `output` what it wrote.
    Done {
        /// Guest return value.
        ret: i64,
        /// Bytes the guest emitted while serving the request.
        output: Vec<u8>,
    },
    /// The server process died (segfault, memory-error exit, abort...).
    Crashed(VmFault),
}

impl Outcome {
    /// Whether the request completed without killing the process.
    pub fn survived(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }

    /// Return code, when the process survived.
    pub fn ret(&self) -> Option<i64> {
        match self {
            Outcome::Done { ret, .. } => Some(*ret),
            Outcome::Crashed(_) => None,
        }
    }

    /// Output bytes, when the process survived.
    pub fn output(&self) -> &[u8] {
        match self {
            Outcome::Done { output, .. } => output,
            Outcome::Crashed(_) => &[],
        }
    }
}

/// A measured request: outcome plus virtual time.
#[derive(Debug, Clone)]
pub struct Measured {
    /// What happened.
    pub outcome: Outcome,
    /// Virtual cycles charged to this request.
    pub cycles: u64,
}

/// Shared plumbing: one guest process running a compiled server.
pub struct Process {
    machine: Machine,
    mode: Mode,
    fuel: u64,
}

impl Process {
    /// Compiles `source` and boots it under `mode`.
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile — the sources are
    /// fixed constants, so that is a bug in this crate, not input error.
    pub fn boot(source: &str, mode: Mode, fuel: u64) -> Process {
        let config = MachineConfig {
            mem: foc_memory::MemConfig::with_mode(mode),
            fuel_per_call: fuel,
        };
        let machine = match Machine::from_source(source, config) {
            Ok(m) => m,
            Err(e) => panic!("server source failed to build: {e}"),
        };
        Process {
            machine,
            mode,
            fuel,
        }
    }

    /// Wraps an already-loaded machine (pools share compiled images).
    pub fn from_machine(machine: Machine, mode: Mode, fuel: u64) -> Process {
        Process {
            machine,
            mode,
            fuel,
        }
    }

    /// The policy this process runs under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The fuel budget per call.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (drivers push inputs, read state).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Whether the process has died.
    pub fn is_dead(&self) -> bool {
        self.machine.is_dead()
    }

    /// Calls a guest entry point, measuring the cycles it consumed.
    pub fn request(&mut self, func: &str, args: &[i64]) -> Measured {
        let before = self.machine.stats().cycles;
        let result = self.machine.call(func, args);
        let cycles = self.machine.stats().cycles - before;
        let outcome = match result {
            Ok(ret) => Outcome::Done {
                ret,
                output: self.machine.take_output(),
            },
            Err(fault) => Outcome::Crashed(fault),
        };
        Measured { outcome, cycles }
    }

    /// Copies a byte string into the guest heap, NUL-terminated.
    ///
    /// # Panics
    ///
    /// Panics when the guest heap is exhausted (drivers allocate tiny
    /// request strings; exhaustion indicates a harness bug).
    pub fn guest_str(&mut self, bytes: &[u8]) -> i64 {
        self.machine
            .alloc_cstring(bytes)
            .expect("guest heap exhausted") as i64
    }

    /// Frees a driver-allocated guest string.
    pub fn free_guest_str(&mut self, addr: i64) {
        // Tolerate failure: freeing after a fault is pointless anyway.
        let _ = self.machine.free_guest(addr as u64);
    }
}

/// Mean and sample standard deviation of a series.
pub fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stddev_basics() {
        let (m, s) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(mean_stddev(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn process_boot_and_request() {
        let mut p = Process::boot(
            "int n = 0; int bump() { n++; return n; }",
            Mode::FailureOblivious,
            1_000_000,
        );
        let r1 = p.request("bump", &[]);
        assert_eq!(r1.outcome.ret(), Some(1));
        assert!(r1.cycles > 0);
        let r2 = p.request("bump", &[]);
        assert_eq!(r2.outcome.ret(), Some(2));
    }
}
