//! The server farm: a multi-threaded load harness that generalizes the
//! Apache regenerating-pool architecture to all five servers of the
//! paper's evaluation.
//!
//! A farm boots `servers` independent guest processes of one
//! [`ServerKind`] under one [`Mode`] — all sharing that kind's interned
//! compiled image (see [`crate::image`]), so neither boots nor
//! supervisor restarts ever invoke the compiler — and drives each with
//! its own deterministic seeded request stream mixing legitimate
//! traffic with attacks at a configured ratio. A supervisor policy
//! restarts dead processes (replaying initialization, which for
//! persistent triggers — Pine's poisoned mailbox, Sendmail's wake-up
//! error under Bounds Check — dies again, exactly the §4.7 situation)
//! until a per-server restart budget is exhausted; after that the
//! server is down and its remaining requests are dropped connections.
//!
//! **Scheduling.** Work is interleaved at *request granularity*: each
//! server's stream is cut into slices of [`FarmConfig::slice_requests`]
//! requests, and a slice is the unit a worker thread executes before
//! requeueing the server. Every worker owns a deque; it drains its own
//! deque from the front (round-robinning its servers) and steals from
//! the back of other workers' deques when it runs dry. Thousands of
//! lightweight server processes therefore interleave over a handful of
//! OS threads, and a slow server (one deep in supervised restarts)
//! cannot pin its siblings behind it.
//!
//! **Determinism contract.** Every request stream is a pure function of
//! `(seed, server index)`, each server's guest machines are fully
//! deterministic (virtual clock, no host time), requests within one
//! server execute in stream order no matter which threads run its
//! slices, and aggregation runs in server-index order after all threads
//! join. Therefore two farm runs with the same config but different
//! `threads` or `slice_requests` values produce [`FarmReport`]s that
//! compare equal (`PartialEq` ignores the one host-side measurement,
//! wall time). The property tests assert this; the scaling bins rely on
//! it to attribute wall-time differences to parallelism alone.

use std::sync::OnceLock;
use std::time::Instant;

use foc_memory::{LookupLayer, Mode, TableKind, ValueSequence};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub use crate::image::ServerKind;

use crate::conn::{ConnSession, Edge};
use crate::latency::LatencyHist;
use crate::steal::{run_stealing, Slice};
use crate::{apache, mc, mutt, pine, sendmail, supervisor, workload, BootSpec, Measured, Outcome};

/// Virtual cycles charged for forking and re-initialising a replacement
/// process (shared with the Apache pool's accounting).
pub const RESTART_COST_CYCLES: u64 = apache::RESTART_COST_CYCLES;

/// Farm shape and workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmConfig {
    /// Which server to run.
    pub kind: ServerKind,
    /// Compiler/runtime policy for every process in the farm.
    pub mode: Mode,
    /// Object-table backend for every process in the farm. Backend
    /// choice never changes what a farm computes (the cross-backend
    /// equivalence tests assert byte-identical transcripts), only how
    /// fast the bounds lookups run — so, like `threads`, it is excluded
    /// from [`FarmReport`] equality.
    pub table: TableKind,
    /// In-bounds lookup layer for every process in the farm. Like
    /// `table`, a pure performance axis (the paged-vs-table equivalence
    /// tests assert byte-identical transcripts), so it too is excluded
    /// from [`FarmReport`] equality.
    pub lookup: LookupLayer,
    /// Manufactured-value strategy for every process in the farm.
    /// Unlike `table`, this *does* change the measured data (different
    /// manufactured reads steer different guest paths), so it is part
    /// of [`FarmReport`] equality.
    pub sequence: ValueSequence,
    /// Per-call instruction budget override; `None` uses each kind's
    /// standard budget. Part of [`FarmReport`] equality (a tight budget
    /// turns long requests into fuel-out crashes).
    pub fuel: Option<u64>,
    /// Number of independent server processes.
    pub servers: usize,
    /// Number of OS threads driving them (clamped to `servers`).
    pub threads: usize,
    /// Requests delivered to each server process.
    pub requests_per_server: usize,
    /// Root seed; server `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Probability that a request is an attack, as `(num, den)`.
    /// `(0, 1)` yields pure legitimate traffic.
    pub attack_ratio: (u32, u32),
    /// Restart attempts the supervisor grants each server process before
    /// declaring it down.
    pub restart_budget: u32,
    /// Requests a worker thread serves on one server before requeueing
    /// it — the work-stealing scheduler's interleaving grain. Affects
    /// host scheduling only, never the measured data (clamped to ≥ 1).
    pub slice_requests: usize,
    /// How requests reach the servers: generated in-process (the
    /// historical fast path) or carried over the simulated socket
    /// layer ([`crate::conn`]). A pure transport axis: the edge never
    /// changes what a stream contains or what a server computes (the
    /// edge-equivalence battery asserts byte-identical reports), so,
    /// like `threads`, it is excluded from [`FarmReport`] equality.
    pub edge: Edge,
}

impl FarmConfig {
    /// A farm of `kind` under `mode` with the default shape: 4 servers,
    /// 4 threads, 100 requests per server, 1-in-8 attacks, and the
    /// shared supervision budget.
    pub fn new(kind: ServerKind, mode: Mode) -> FarmConfig {
        FarmConfig {
            kind,
            mode,
            table: TableKind::default(),
            lookup: LookupLayer::from_env(),
            sequence: ValueSequence::default(),
            fuel: None,
            servers: 4,
            threads: 4,
            requests_per_server: 100,
            seed: 0xF0C_0001,
            attack_ratio: (1, 8),
            restart_budget: supervisor::RESTART_BUDGET,
            slice_requests: 16,
            edge: Edge::from_env(),
        }
    }

    /// Same farm with a different thread count (scaling sweeps).
    pub fn with_threads(mut self, threads: usize) -> FarmConfig {
        self.threads = threads;
        self
    }

    /// Same farm with a different scheduling grain.
    pub fn with_slice(mut self, slice_requests: usize) -> FarmConfig {
        self.slice_requests = slice_requests;
        self
    }

    /// Same farm on a different object-table backend.
    pub fn with_table(mut self, table: TableKind) -> FarmConfig {
        self.table = table;
        self
    }

    /// Same farm on a different in-bounds lookup layer.
    pub fn with_lookup(mut self, lookup: LookupLayer) -> FarmConfig {
        self.lookup = lookup;
        self
    }

    /// Same farm with a different manufactured-value strategy.
    pub fn with_sequence(mut self, sequence: ValueSequence) -> FarmConfig {
        self.sequence = sequence;
        self
    }

    /// Same farm with an explicit per-call fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> FarmConfig {
        self.fuel = Some(fuel);
        self
    }

    /// The full boot spec a process of this farm runs under.
    pub fn boot_spec(&self) -> BootSpec {
        BootSpec::new(self.kind, self.mode)
            .with_table(self.table)
            .with_lookup(self.lookup)
            .with_sequence(self.sequence)
            .with_fuel(self.fuel.unwrap_or_else(|| self.kind.fuel()))
    }

    /// Same farm with a different attack ratio.
    pub fn with_attack_ratio(mut self, num: u32, den: u32) -> FarmConfig {
        self.attack_ratio = (num, den);
        self
    }

    /// Same farm behind a different request edge.
    pub fn with_edge(mut self, edge: Edge) -> FarmConfig {
        self.edge = edge;
        self
    }
}

/// What happened on one server process over its whole request stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests attempted (attacks included; counts connections refused
    /// while the server was down).
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Requests lost to a dead or down process.
    pub dropped: u64,
    /// Attack requests within `requests` (attempted, like `requests`).
    pub attacks: u64,
    /// Process deaths observed while serving.
    pub deaths: u64,
    /// Restart attempts the supervisor made.
    pub restarts: u64,
    /// Whether the process was down (unusable, budget exhausted) when the
    /// stream ended.
    pub down_at_end: bool,
    /// Virtual cycles spent serving plus restart overhead.
    pub total_cycles: u64,
    /// The restart-overhead share of `total_cycles` (the §4.3.2
    /// process-management cost; the boot/restart split in the reports).
    pub restart_cycles: u64,
    /// Per-completed-request virtual latencies, in stream order.
    pub latencies: Vec<u64>,
    /// Virtual cycles of each supervised restart burst (one entry per
    /// time the supervisor had to step in), in stream order — the raw
    /// material of the tail-attribution split.
    pub restart_bursts: Vec<u64>,
}

/// Deterministic farm-wide aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Total requests attempted across the farm (refused connections
    /// included).
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Dropped connections.
    pub dropped: u64,
    /// Attack requests attempted.
    pub attacks: u64,
    /// Process deaths across the farm.
    pub deaths: u64,
    /// Supervisor restart attempts.
    pub restarts: u64,
    /// Servers down when their streams ended.
    pub servers_down: u64,
    /// Virtual cycles spent farm-wide (serving + restarts).
    pub total_cycles: u64,
    /// The restart-overhead share of `total_cycles`.
    pub restart_cycles: u64,
    /// Mean completed-request latency in millicycles (fixed point, so the
    /// aggregate stays `Eq`-comparable).
    pub latency_mean_millicycles: u64,
    /// Median completed-request latency (virtual cycles).
    pub latency_p50: u64,
    /// 90th-percentile latency.
    pub latency_p90: u64,
    /// 99th-percentile latency.
    pub latency_p99: u64,
    /// 99.9th-percentile latency (exact, from the full latency set).
    pub latency_p999: u64,
    /// Worst completed-request latency.
    pub latency_max: u64,
    /// Log-bucket histogram of completed-request latencies.
    pub service_hist: LatencyHist,
    /// Log-bucket histogram of supervised restart bursts (cycles).
    pub restart_hist: LatencyHist,
    /// Cycle mass of *tail events* — the top ~1% by position of the
    /// merged population of completed-request latencies and restart
    /// bursts — owned by request service.
    pub tail_service_cycles: u64,
    /// Cycle mass of tail events owned by restart overhead — at farm
    /// scale this is where the §4.3.2 process-management cost surfaces.
    pub tail_restart_cycles: u64,
}

impl FarmStats {
    /// Fraction of requests that completed.
    pub fn survival_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.completed as f64 / self.requests as f64
    }

    /// Completed requests per virtual megacycle — the farm's throughput
    /// in virtual time (host-independent).
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.total_cycles as f64 / 1e6)
    }

    /// Virtual cycles spent actually serving requests (total minus the
    /// restart overhead — the other half of the boot/restart split).
    pub fn service_cycles(&self) -> u64 {
        self.total_cycles - self.restart_cycles
    }
}

/// The result of one farm run. `PartialEq` compares everything except
/// `host_wall_ms` (the only host-time measurement), so reports from runs
/// with identical configs and seeds compare equal regardless of thread
/// count or scheduling grain.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// The configuration that produced this report.
    pub config: FarmConfig,
    /// Farm-wide aggregate (server-index order, thread-independent).
    pub stats: FarmStats,
    /// Per-server breakdown, indexed by server.
    pub per_server: Vec<ServerStats>,
    /// Host wall-clock time for the whole run, in milliseconds. Excluded
    /// from `PartialEq`.
    pub host_wall_ms: f64,
}

impl PartialEq for FarmReport {
    fn eq(&self, other: &FarmReport) -> bool {
        let a = &self.config;
        let b = &other.config;
        // Thread count, slice grain, table backend, lookup layer, and
        // the request edge are excluded: they shape host wall time
        // only, never the measured data — that is the determinism
        // contract (the backend half is asserted by the cross-backend
        // transcript-equivalence tests, the layer half by the
        // paged-vs-table battery, the edge half by the socket-vs-
        // in-process battery in `tests/conn_equiv.rs`).
        a.kind == b.kind
            && a.mode == b.mode
            && a.sequence == b.sequence
            && a.fuel == b.fuel
            && a.servers == b.servers
            && a.requests_per_server == b.requests_per_server
            && a.seed == b.seed
            && a.attack_ratio == b.attack_ratio
            && a.restart_budget == b.restart_budget
            && self.stats == other.stats
            && self.per_server == other.per_server
    }
}

impl FarmReport {
    /// Completed requests per host second — the farm's host-side
    /// throughput (what the scaling sweep measures).
    pub fn host_throughput_rps(&self) -> f64 {
        if self.host_wall_ms <= 0.0 {
            return 0.0;
        }
        self.stats.completed as f64 / (self.host_wall_ms / 1e3)
    }
}

/// One guest server process under farm supervision. Driver-side
/// workload state (Pine's mailbox-size view, MC's file counter) lives
/// in [`RequestGen`], not here: the process is pure service, so the
/// same enum can sit behind either request edge and behind the sweep's
/// scripted inputs.
pub(crate) enum FarmProcess {
    Apache(apache::ApacheWorker),
    Sendmail(sendmail::Sendmail),
    Pine(pine::Pine),
    Mutt(mutt::Mutt),
    Mc(mc::Mc),
}

/// The persistent environment a server process boots over — the
/// "files on disk" that survive supervised restarts: Pine's mail file,
/// MC's configuration, Mutt's folder seed. The farm always uses the
/// standard environment (which the boot-checkpoint cache captures);
/// the sweep's input library substitutes poisoned variants.
pub(crate) struct ServerEnv {
    /// Pine's seed mailbox (the mail file).
    pub pine_mailbox: crate::image::Mailbox,
    /// MC's configuration file contents.
    pub mc_config: Vec<u8>,
    /// Messages Mutt's folder seed starts with.
    pub mutt_seed: usize,
}

impl ServerEnv {
    /// The standard environment every farm process boots over.
    pub fn standard() -> ServerEnv {
        ServerEnv {
            pine_mailbox: crate::image::standard_pine_mailbox().clone(),
            mc_config: crate::image::standard_mc_config().clone(),
            mutt_seed: MUTT_SEED_MESSAGES,
        }
    }
}

/// Messages every Pine farm process starts with (the standard seed
/// mailbox the boot-checkpoint cache captures).
const PINE_SEED_MESSAGES: usize = crate::image::PINE_SEED_MESSAGES;
/// Messages every Mutt farm process starts with.
const MUTT_SEED_MESSAGES: usize = crate::image::MUTT_SEED_MESSAGES;

/// The farm's fixed attack payloads, interned once per host process —
/// at thousands of servers, regenerating a constant attack string per
/// request is measurable allocator churn.
fn apache_attack() -> &'static [u8] {
    static P: OnceLock<Vec<u8>> = OnceLock::new();
    P.get_or_init(apache::attack_url)
}

fn sendmail_attack() -> &'static [u8] {
    static P: OnceLock<Vec<u8>> = OnceLock::new();
    P.get_or_init(|| sendmail::attack_address(40))
}

fn pine_attack() -> &'static [u8] {
    static P: OnceLock<Vec<u8>> = OnceLock::new();
    P.get_or_init(|| pine::attack_from(40))
}

fn mutt_attack() -> &'static [u8] {
    static P: OnceLock<Vec<u8>> = OnceLock::new();
    P.get_or_init(|| mutt::attack_folder_name(40))
}

fn mc_attack() -> &'static [Vec<u8>] {
    static P: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    P.get_or_init(mc::attack_links)
}

impl FarmProcess {
    /// Boots one process of `kind` over the standard environment from
    /// the interned boot checkpoint — the compiler runs at most once
    /// per kind per host process, and boot plus standard environment
    /// replay run at most once per `(kind, spec)`: every farm boot and
    /// supervised restart after the first restores the frozen snapshot
    /// (the drivers' `boot_spec` constructors route through
    /// [`crate::image::boot_checkpoint`]).
    fn boot(kind: ServerKind, spec: &BootSpec) -> FarmProcess {
        match kind {
            ServerKind::Apache => FarmProcess::Apache(apache::ApacheWorker::boot_spec(spec)),
            ServerKind::Sendmail => FarmProcess::Sendmail(sendmail::Sendmail::boot_spec(spec)),
            ServerKind::Pine => FarmProcess::Pine(pine::Pine::boot_spec(
                spec,
                pine::Pine::standard_mailbox(PINE_SEED_MESSAGES),
            )),
            ServerKind::Mutt => FarmProcess::Mutt(mutt::Mutt::boot_spec(spec, MUTT_SEED_MESSAGES)),
            ServerKind::Mc => FarmProcess::Mc(mc::Mc::boot_spec(spec, &mc::clean_config())),
        }
    }

    /// Boots one process over an explicit environment (the sweep's
    /// poisoned mailboxes and blank configurations). Standard
    /// environments still hit the boot-checkpoint cache — the drivers'
    /// eligibility checks compare contents, not provenance.
    pub(crate) fn boot_env(kind: ServerKind, spec: &BootSpec, env: &ServerEnv) -> FarmProcess {
        match kind {
            ServerKind::Apache => FarmProcess::Apache(apache::ApacheWorker::boot_spec(spec)),
            ServerKind::Sendmail => FarmProcess::Sendmail(sendmail::Sendmail::boot_spec(spec)),
            ServerKind::Pine => {
                FarmProcess::Pine(pine::Pine::boot_spec(spec, env.pine_mailbox.clone()))
            }
            ServerKind::Mutt => FarmProcess::Mutt(mutt::Mutt::boot_spec(spec, env.mutt_seed)),
            ServerKind::Mc => FarmProcess::Mc(mc::Mc::boot_spec(spec, &env.mc_config)),
        }
    }

    /// Whether the process can serve requests.
    pub(crate) fn usable(&self) -> bool {
        match self {
            FarmProcess::Apache(w) => !w.is_dead(),
            FarmProcess::Sendmail(s) => s.usable(),
            FarmProcess::Pine(pine) => pine.usable(),
            FarmProcess::Mutt(m) => !m.process().is_dead(),
            FarmProcess::Mc(mc) => mc.usable(),
        }
    }

    /// The underlying guest process (violation counters, error log).
    pub(crate) fn process(&self) -> &crate::Process {
        match self {
            FarmProcess::Apache(w) => w.process(),
            FarmProcess::Sendmail(s) => s.process(),
            FarmProcess::Pine(pine) => pine.process(),
            FarmProcess::Mutt(m) => m.process(),
            FarmProcess::Mc(mc) => mc.process(),
        }
    }

    /// The boot/initialization outcome, for the kinds whose init runs
    /// guest code that can itself die (§4.4.4, §4.7). `None` for the
    /// kinds that boot inertly (Apache's worker, Mutt).
    pub(crate) fn init_outcome(&self) -> Option<Outcome> {
        match self {
            FarmProcess::Apache(_) | FarmProcess::Mutt(_) => None,
            FarmProcess::Sendmail(s) => Some(s.init_outcome().clone()),
            FarmProcess::Pine(pine) => Some(pine.init_outcome().clone()),
            FarmProcess::Mc(mc) => Some(mc.init_outcome().clone()),
        }
    }

    /// Replaces the dead process, preserving the persistent environment
    /// (the Pine mailbox survives restarts — it is the mail file on
    /// disk; MC re-reads the same configuration). Both arms are
    /// checkpoint restores: Pine restores its pre-index restart base
    /// and replays only the delivered delta; the others restore the
    /// boot snapshot of their environment.
    pub(crate) fn restart(&mut self, kind: ServerKind, spec: &BootSpec, env: &ServerEnv) {
        match self {
            FarmProcess::Pine(pine) => pine.restart(),
            other => *other = FarmProcess::boot_env(kind, spec, env),
        }
    }
}

// ---------------------------------------------------------------------
// Requests: content decoupled from transport.
// ---------------------------------------------------------------------

/// Request content bytes: an interned static payload (the attack
/// constants, fixed benign paths) or an owned buffer (generated
/// content, decoded frames). Splitting the two keeps the in-process
/// fast path allocation-free exactly where the old inline generation
/// was, while giving the socket edge a decodable owned form. Equality
/// is by *content*, not provenance — a decoded `Owned` frame equals the
/// `Static` original it was framed from.
#[derive(Debug, Clone)]
pub(crate) enum Bytes {
    /// Interned constant content.
    Static(&'static [u8]),
    /// Generated or decoded content.
    Owned(Vec<u8>),
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Bytes::Static(b) => b,
            Bytes::Owned(b) => b,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// MC archive link lists, static/owned like [`Bytes`] (and, like it,
/// compared by content).
#[derive(Debug, Clone)]
pub(crate) enum Links {
    /// The interned attack archive.
    Static(&'static [Vec<u8>]),
    /// A decoded archive.
    Owned(Vec<Vec<u8>>),
}

impl std::ops::Deref for Links {
    type Target = [Vec<u8>];

    fn deref(&self) -> &[Vec<u8>] {
        match self {
            Links::Static(l) => l,
            Links::Owned(l) => l,
        }
    }
}

impl PartialEq for Links {
    fn eq(&self, other: &Links) -> bool {
        **self == **other
    }
}

impl Eq for Links {}

/// One fully-formed request against one server kind — the unit the
/// connection edge frames onto the wire and the in-process edge applies
/// directly. Covers the farm's generated mix *and* the sweep's scripted
/// vocabulary (`SendmailMailFrom` appears only in scripts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Request {
    /// `GET path` against the Apache worker.
    ApacheGet { path: Bytes },
    /// Inbound mail through Sendmail's prescan.
    SendmailReceive { from: Bytes, to: Bytes, body: Bytes },
    /// Outbound mail.
    SendmailSend { to: Bytes, body: Bytes },
    /// The daemon's periodic wake-up.
    SendmailWakeup,
    /// A bare MAIL FROM (the §4.4 attack script's first step).
    SendmailMailFrom { from: Bytes },
    /// Delivery into Pine's mail file.
    PineDeliver {
        from: Bytes,
        subject: Bytes,
        body: Bytes,
    },
    /// Read message `index`.
    PineRead { index: i64 },
    /// Compose a draft.
    PineCompose,
    /// Move message `index`.
    PineMove { index: i64 },
    /// Open folder `name` (the Figure 1 conversion path).
    MuttOpenFolder { name: Bytes },
    /// Read message `index`.
    MuttRead { index: i64 },
    /// Copy `src` to `dst`.
    McCopy { src: Bytes, dst: Bytes },
    /// Create directory `path`.
    McMkdir { path: Bytes },
    /// Delete `path`.
    McDelete { path: Bytes },
    /// The §3 `'/'`-component scan over `name`.
    McComponentEnd { name: Bytes },
    /// Open an archive of symlink entries (§4.5).
    McOpenArchive { links: Links },
}

impl Request {
    /// Which server kind this request addresses.
    pub(crate) fn kind(&self) -> ServerKind {
        match self {
            Request::ApacheGet { .. } => ServerKind::Apache,
            Request::SendmailReceive { .. }
            | Request::SendmailSend { .. }
            | Request::SendmailWakeup
            | Request::SendmailMailFrom { .. } => ServerKind::Sendmail,
            Request::PineDeliver { .. }
            | Request::PineRead { .. }
            | Request::PineCompose
            | Request::PineMove { .. } => ServerKind::Pine,
            Request::MuttOpenFolder { .. } | Request::MuttRead { .. } => ServerKind::Mutt,
            Request::McCopy { .. }
            | Request::McMkdir { .. }
            | Request::McDelete { .. }
            | Request::McComponentEnd { .. }
            | Request::McOpenArchive { .. } => ServerKind::Mc,
        }
    }

    /// Executes this request against its server process. Pure dispatch:
    /// every driver call site matches what the pre-edge inline
    /// generation invoked, so transcripts are unchanged.
    ///
    /// # Panics
    ///
    /// Panics when the request and process kinds disagree (a framing or
    /// harness bug, never data-dependent).
    pub(crate) fn apply(&self, process: &mut FarmProcess) -> Measured {
        match (self, process) {
            (Request::ApacheGet { path }, FarmProcess::Apache(w)) => w.get(path),
            (Request::SendmailReceive { from, to, body }, FarmProcess::Sendmail(s)) => {
                s.receive(from, to, body)
            }
            (Request::SendmailSend { to, body }, FarmProcess::Sendmail(s)) => s.send(to, body),
            (Request::SendmailWakeup, FarmProcess::Sendmail(s)) => s.wakeup(),
            (Request::SendmailMailFrom { from }, FarmProcess::Sendmail(s)) => s.mail_from(from),
            (
                Request::PineDeliver {
                    from,
                    subject,
                    body,
                },
                FarmProcess::Pine(p),
            ) => p.deliver(from, subject, body),
            (Request::PineRead { index }, FarmProcess::Pine(p)) => p.read(*index),
            (Request::PineCompose, FarmProcess::Pine(p)) => p.compose(),
            (Request::PineMove { index }, FarmProcess::Pine(p)) => p.move_message(*index),
            (Request::MuttOpenFolder { name }, FarmProcess::Mutt(m)) => m.open_folder(name),
            (Request::MuttRead { index }, FarmProcess::Mutt(m)) => m.read_message(*index),
            (Request::McCopy { src, dst }, FarmProcess::Mc(m)) => m.copy(src, dst),
            (Request::McMkdir { path }, FarmProcess::Mc(m)) => m.mkdir(path),
            (Request::McDelete { path }, FarmProcess::Mc(m)) => m.delete(path),
            (Request::McComponentEnd { name }, FarmProcess::Mc(m)) => m.component_end(name),
            (Request::McOpenArchive { links }, FarmProcess::Mc(m)) => m.open_archive(links),
            _ => panic!("request kind does not match the server process"),
        }
    }
}

/// Cap on pooled request-content buffers (a stream has at most three
/// content fields in flight per request).
const GEN_POOL: usize = 8;

/// The deterministic request generator for one server's stream: the
/// seeded rng plus the driver-side workload state the old inline
/// generation kept on the process (Pine's mailbox-size view, MC's file
/// counter). Both edges draw from the *same* generator in stream
/// order, which is the whole byte-identity argument: the socket layer
/// moves frames, never content decisions.
///
/// The workload is a **closed loop**: request `k+1`'s content may
/// depend on request `k`'s outcome (a delivery that survived grows the
/// readable-mailbox range), so generation must observe each outcome
/// before drawing the next request — see [`RequestGen::observe`].
pub(crate) struct RequestGen {
    rng: StdRng,
    /// Driver-side view of Pine's mailbox size (read-index domain).
    messages: i64,
    /// Monotonic counter for unique MC file names.
    files: u64,
    /// Recycled content buffers, so steady-state generation performs no
    /// host allocation per request (the scratch-pool idiom, moved off
    /// the process and onto the stream).
    pool: Vec<Vec<u8>>,
}

impl RequestGen {
    /// A generator over `seed`, with Pine's view starting at the
    /// standard seed-mailbox size.
    pub(crate) fn new(seed: u64) -> RequestGen {
        RequestGen {
            rng: StdRng::seed_from_u64(seed),
            messages: PINE_SEED_MESSAGES as i64,
            files: 0,
            pool: Vec::new(),
        }
    }

    /// Draws the attack decision for the next request (the stream's
    /// first rng draw per request, exactly as before the edge split).
    pub(crate) fn draw_attack(&mut self, ratio: (u32, u32)) -> bool {
        ratio.0 > 0 && self.rng.gen_ratio(ratio.0, ratio.1)
    }

    fn buf(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    /// Generates the next request of the stream. The rng draw order
    /// transcribes the pre-edge inline generation exactly — one
    /// `gen_range(0..10)` selector, then the content draws in the same
    /// order — so streams are bit-compatible with every recorded
    /// artifact.
    pub(crate) fn generate(&mut self, kind: ServerKind, attack: bool) -> Request {
        use std::io::Write as _;
        match kind {
            ServerKind::Apache => {
                if attack {
                    return Request::ApacheGet {
                        path: Bytes::Static(apache_attack()),
                    };
                }
                let path: &'static [u8] = match self.rng.gen_range(0u32..10) {
                    0..=5 => b"/index.html",
                    6..=7 => b"/rw/index.html",
                    8 => b"/big.bin",
                    _ => b"/nosuchpage.html",
                };
                Request::ApacheGet {
                    path: Bytes::Static(path),
                }
            }
            ServerKind::Sendmail => {
                if attack {
                    let mut to = self.buf();
                    workload::sendmail_address_into(&mut to, self.rng.next_u64());
                    return Request::SendmailReceive {
                        from: Bytes::Static(sendmail_attack()),
                        to: Bytes::Owned(to),
                        body: Bytes::Static(b"attack payload"),
                    };
                }
                match self.rng.gen_range(0u32..10) {
                    0..=6 => {
                        let mut from = self.buf();
                        let mut to = self.buf();
                        let mut body = self.buf();
                        workload::sendmail_address_into(&mut from, self.rng.next_u64());
                        workload::sendmail_address_into(&mut to, self.rng.next_u64());
                        workload::lorem_into(&mut body, 160, self.rng.next_u64());
                        Request::SendmailReceive {
                            from: Bytes::Owned(from),
                            to: Bytes::Owned(to),
                            body: Bytes::Owned(body),
                        }
                    }
                    7..=8 => {
                        let mut to = self.buf();
                        let mut body = self.buf();
                        workload::sendmail_address_into(&mut to, self.rng.next_u64());
                        workload::lorem_into(&mut body, 200, self.rng.next_u64());
                        Request::SendmailSend {
                            to: Bytes::Owned(to),
                            body: Bytes::Owned(body),
                        }
                    }
                    _ => Request::SendmailWakeup,
                }
            }
            ServerKind::Pine => {
                if attack {
                    // The poisoned message persists in the mailbox:
                    // every restart replays it (§4.7).
                    return Request::PineDeliver {
                        from: Bytes::Static(pine_attack()),
                        subject: Bytes::Static(b"pwn"),
                        body: Bytes::Static(b"payload"),
                    };
                }
                match self.rng.gen_range(0u32..10) {
                    0..=2 => {
                        let mut from = self.buf();
                        let mut body = self.buf();
                        workload::from_field_into(&mut from, self.rng.next_u64());
                        workload::lorem_into(&mut body, 300, self.rng.next_u64());
                        Request::PineDeliver {
                            from: Bytes::Owned(from),
                            subject: Bytes::Static(b"new mail"),
                            body: Bytes::Owned(body),
                        }
                    }
                    3..=6 => Request::PineRead {
                        index: self.rng.gen_range(0..self.messages.max(1)),
                    },
                    7..=8 => Request::PineCompose,
                    _ => Request::PineMove {
                        index: self.rng.gen_range(0..self.messages.max(1)),
                    },
                }
            }
            ServerKind::Mutt => {
                if attack {
                    return Request::MuttOpenFolder {
                        name: Bytes::Static(mutt_attack()),
                    };
                }
                match self.rng.gen_range(0u32..10) {
                    0..=3 => Request::MuttOpenFolder {
                        name: Bytes::Static(b"INBOX"),
                    },
                    4..=8 => Request::MuttRead {
                        index: self.rng.gen_range(0..MUTT_SEED_MESSAGES as i64),
                    },
                    _ => Request::MuttOpenFolder {
                        name: Bytes::Static(b"work"),
                    },
                }
            }
            ServerKind::Mc => {
                if attack {
                    return Request::McOpenArchive {
                        links: Links::Static(mc_attack()),
                    };
                }
                match self.rng.gen_range(0u32..10) {
                    0..=3 => {
                        self.files += 1;
                        let files = self.files;
                        let mut dst = self.buf();
                        let _ = write!(dst, "/tmp/copy{files}");
                        Request::McCopy {
                            src: Bytes::Static(b"/home/user/data.bin"),
                            dst: Bytes::Owned(dst),
                        }
                    }
                    4..=5 => {
                        self.files += 1;
                        let files = self.files;
                        let mut dir = self.buf();
                        let _ = write!(dir, "/tmp/dir{files}");
                        Request::McMkdir {
                            path: Bytes::Owned(dir),
                        }
                    }
                    6..=7 => Request::McComponentEnd {
                        name: Bytes::Static(b"usr/share/component/lib"),
                    },
                    _ => {
                        let files = self.files;
                        let mut victim = self.buf();
                        let _ = write!(victim, "/tmp/copy{files}");
                        Request::McDelete {
                            path: Bytes::Owned(victim),
                        }
                    }
                }
            }
        }
    }

    /// Observes a served request's fate, updating the driver-side
    /// state the next generation depends on: a Pine delivery that
    /// survived grows the mailbox view (matching what the mail file
    /// now holds). Must run before the next [`RequestGen::generate`].
    pub(crate) fn observe(&mut self, request: &Request, survived: bool) {
        if survived && matches!(request, Request::PineDeliver { .. }) {
            self.messages += 1;
        }
    }

    /// Returns a request's owned content buffers to the pool.
    pub(crate) fn recycle(&mut self, request: Request) {
        let mut give = |b: Bytes| {
            if let Bytes::Owned(mut buf) = b {
                if self.pool.len() < GEN_POOL {
                    buf.clear();
                    self.pool.push(buf);
                }
            }
        };
        match request {
            Request::ApacheGet { path } => give(path),
            Request::SendmailReceive { from, to, body } => {
                give(from);
                give(to);
                give(body);
            }
            Request::SendmailSend { to, body } => {
                give(to);
                give(body);
            }
            Request::SendmailMailFrom { from } => give(from),
            Request::PineDeliver {
                from,
                subject,
                body,
            } => {
                give(from);
                give(subject);
                give(body);
            }
            Request::MuttOpenFolder { name } => give(name),
            Request::McCopy { src, dst } => {
                give(src);
                give(dst);
            }
            Request::McMkdir { path } | Request::McDelete { path } => give(path),
            Request::McComponentEnd { name } => give(name),
            Request::SendmailWakeup
            | Request::PineRead { .. }
            | Request::PineCompose
            | Request::PineMove { .. }
            | Request::MuttRead { .. }
            | Request::McOpenArchive { .. } => {}
        }
    }
}

/// Derives server `index`'s stream seed from the farm seed (SplitMix64
/// finalizer, so neighbouring indices get unrelated streams).
fn server_seed(farm_seed: u64, index: usize) -> u64 {
    let mut z = farm_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Restarts `process` until it serves again or the server's remaining
/// budget runs out, charging each attempt to the server's stats. The
/// attempt loop itself is the shared [`supervisor::restart_until_usable`]
/// helper — one definition of supervision for the farm and the §4.7
/// study.
fn supervise(
    process: &mut FarmProcess,
    stats: &mut ServerStats,
    config: &FarmConfig,
    env: &ServerEnv,
) {
    let remaining = u64::from(config.restart_budget).saturating_sub(stats.restarts);
    let budget = u32::try_from(remaining).unwrap_or(u32::MAX);
    let (kind, spec) = (config.kind, config.boot_spec());
    let attempts = supervisor::restart_until_usable(
        process,
        budget,
        |p| p.usable(),
        |p| p.restart(kind, &spec, env),
    );
    stats.restarts += u64::from(attempts);
    stats.total_cycles += u64::from(attempts) * RESTART_COST_CYCLES;
    stats.restart_cycles += u64::from(attempts) * RESTART_COST_CYCLES;
    if attempts > 0 {
        stats
            .restart_bursts
            .push(u64::from(attempts) * RESTART_COST_CYCLES);
    }
}

/// One server's in-flight execution state: the unit the work-stealing
/// scheduler moves between threads. Requests within the server always
/// execute in stream order; only *which thread* runs the next slice
/// varies.
struct ServerRun {
    index: usize,
    gen: RequestGen,
    process: FarmProcess,
    env: ServerEnv,
    /// The socket session carrying this server's stream, when the farm
    /// runs behind [`Edge::Socket`]. `None` is the in-process edge:
    /// requests apply directly, no framing.
    conn: Option<Box<ConnSession>>,
    stats: ServerStats,
    /// Requests issued so far (attempted, including refused connections).
    issued: usize,
}

impl ServerRun {
    /// Boots server `index` from the interned image and burns any
    /// restart budget initialization demands (Bounds Check Sendmail's
    /// wake-up, §4.4.4).
    fn boot(config: &FarmConfig, index: usize) -> Box<ServerRun> {
        let gen = RequestGen::new(server_seed(config.seed, index));
        let env = ServerEnv::standard();
        let mut stats = ServerStats::default();
        let mut process = FarmProcess::boot(config.kind, &config.boot_spec());
        supervise(&mut process, &mut stats, config, &env);
        let conn = match &config.edge {
            Edge::InProcess => None,
            Edge::Socket(socket) => Some(Box::new(ConnSession::new(config.kind, socket))),
        };
        Box::new(ServerRun {
            index,
            gen,
            process,
            env,
            conn,
            stats,
            issued: 0,
        })
    }

    /// Issues the next request of this server's stream. The accounting
    /// order (attack draw, drop-or-serve, cycle charge, supervision) is
    /// the report contract; both edges flow through it identically.
    fn step(&mut self, config: &FarmConfig) {
        self.issued += 1;
        self.stats.requests += 1;
        let attack = self.gen.draw_attack(config.attack_ratio);
        if attack {
            self.stats.attacks += 1;
        }

        if !self.process.usable() {
            // Down and out of budget: the connection is refused (on the
            // socket edge, literally — the listener is torn down).
            self.stats.dropped += 1;
            if let Some(conn) = &mut self.conn {
                conn.refused();
            }
            return;
        }

        let request = self.gen.generate(config.kind, attack);
        let measured = match &mut self.conn {
            None => request.apply(&mut self.process),
            Some(conn) => conn.transact(&request, &mut self.process),
        };
        self.gen.observe(&request, measured.outcome.survived());
        self.gen.recycle(request);
        self.stats.total_cycles += measured.cycles;
        match measured.outcome {
            Outcome::Done { .. } => {
                self.stats.completed += 1;
                self.stats.latencies.push(measured.cycles);
            }
            Outcome::Crashed(_) => {
                self.stats.dropped += 1;
                self.stats.deaths += 1;
                supervise(&mut self.process, &mut self.stats, config, &self.env);
            }
        }
    }

    /// Whether the whole stream has been issued.
    fn finished(&self, config: &FarmConfig) -> bool {
        self.issued >= config.requests_per_server
    }

    /// Seals the run and returns its stats.
    fn finish(mut self, config: &FarmConfig) -> (usize, ServerStats) {
        debug_assert!(self.finished(config));
        self.stats.down_at_end = !self.process.usable();
        (self.index, self.stats)
    }
}

/// A schedulable unit in a worker deque.
enum Task {
    /// A server that has not booted yet (boot happens on first pop, so
    /// boot cost lands on whichever thread has capacity).
    Fresh(usize),
    /// A booted server mid-stream, carrying its execution state.
    Resume(Box<ServerRun>),
}

/// What became of one executed slice.
enum SliceOutcome {
    /// Stream unfinished: requeue the server.
    Yield(Box<ServerRun>),
    /// Stream complete: publish the stats for this server index.
    Finished(usize, ServerStats),
}

/// Executes up to `slice` requests of `task`'s server.
fn run_slice(config: &FarmConfig, task: Task, slice: usize) -> SliceOutcome {
    let mut run = match task {
        Task::Fresh(index) => ServerRun::boot(config, index),
        Task::Resume(run) => run,
    };
    for _ in 0..slice {
        if run.finished(config) {
            break;
        }
        run.step(config);
    }
    if run.finished(config) {
        let (index, stats) = run.finish(config);
        SliceOutcome::Finished(index, stats)
    } else {
        SliceOutcome::Yield(run)
    }
}

/// Aggregates per-server stats in server-index order (making the result
/// independent of which thread ran which server).
fn aggregate(per_server: &[ServerStats]) -> FarmStats {
    let mut agg = FarmStats::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut bursts: Vec<u64> = Vec::new();
    for s in per_server {
        agg.requests += s.requests;
        agg.completed += s.completed;
        agg.dropped += s.dropped;
        agg.attacks += s.attacks;
        agg.deaths += s.deaths;
        agg.restarts += s.restarts;
        agg.servers_down += u64::from(s.down_at_end);
        agg.total_cycles += s.total_cycles;
        agg.restart_cycles += s.restart_cycles;
        latencies.extend_from_slice(&s.latencies);
        bursts.extend_from_slice(&s.restart_bursts);
        for &l in &s.latencies {
            agg.service_hist.record(l);
        }
        for &b in &s.restart_bursts {
            agg.restart_hist.record(b);
        }
    }
    if !latencies.is_empty() {
        latencies.sort_unstable();
        let total: u64 = latencies.iter().sum();
        agg.latency_mean_millicycles = total * 1000 / latencies.len() as u64;
        let pick = |num: usize, den: usize| latencies[(latencies.len() - 1) * num / den];
        agg.latency_p50 = pick(50, 100);
        agg.latency_p90 = pick(90, 100);
        agg.latency_p99 = pick(99, 100);
        agg.latency_p999 = pick(999, 1000);
        agg.latency_max = *latencies.last().unwrap();
    }
    // Tail attribution: treat completed-request latencies and restart
    // bursts as one event population and split the cycle mass of its top
    // ~1% *by position* (the events above the merged p99 rank) between
    // owners. Positional, not value-threshold: the simulator's quantized
    // virtual cycles produce big tied classes, and a `>= p99-value`
    // filter would sweep a whole tied class — potentially most of the
    // run — into the "tail". A backward two-pointer walk over the two
    // sorted arrays takes exactly the top events, attributing each as it
    // goes (ties prefer service events, deterministically). Under
    // attack, the restarting modes' tails are restart-owned (§4.3.2's
    // process-management overhead); failure-oblivious tails stay
    // service-owned.
    let total_events = latencies.len() + bursts.len();
    if total_events > 0 {
        bursts.sort_unstable();
        let rank = (total_events - 1) * 99 / 100;
        let tail_count = total_events - rank;
        let (mut i, mut j) = (latencies.len(), bursts.len());
        for _ in 0..tail_count {
            if i > 0 && (j == 0 || latencies[i - 1] >= bursts[j - 1]) {
                i -= 1;
                agg.tail_service_cycles += latencies[i];
            } else {
                j -= 1;
                agg.tail_restart_cycles += bursts[j];
            }
        }
    }
    agg
}

/// Runs the farm: seeds `config.servers` server tasks round-robin over
/// `config.threads` worker deques, executes them slice-by-slice with
/// work stealing, and aggregates deterministically.
///
/// # Panics
///
/// Panics when `config.servers == 0` or `config.requests_per_server == 0`
/// (an empty farm is a harness bug, not a measurement), or when a worker
/// thread panics.
pub fn run_farm(config: &FarmConfig) -> FarmReport {
    assert!(config.servers > 0, "farm needs at least one server");
    assert!(
        config.requests_per_server > 0,
        "farm needs at least one request per server"
    );
    let threads = config.threads.clamp(1, config.servers);
    let slice = config.slice_requests.max(1);
    let started = Instant::now();

    let tasks: Vec<Task> = (0..config.servers).map(Task::Fresh).collect();
    let per_server: Vec<ServerStats> = run_stealing(threads, tasks, |task| {
        match run_slice(config, task, slice) {
            SliceOutcome::Yield(run) => Slice::Yield(Task::Resume(run)),
            SliceOutcome::Finished(index, stats) => Slice::Done(index, stats),
        }
    });
    let stats = aggregate(&per_server);

    FarmReport {
        config: config.clone(),
        stats,
        per_server,
        host_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one farm per mode for a fixed kind — the cross-mode comparison
/// the paper's throughput figures make, at farm scale.
pub fn run_mode_sweep(kind: ServerKind, base: &FarmConfig) -> Vec<FarmReport> {
    Mode::ALL
        .iter()
        .map(|&mode| {
            let mut config = base.clone();
            config.kind = kind;
            config.mode = mode;
            run_farm(&config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ServerKind, mode: Mode) -> FarmConfig {
        let mut c = FarmConfig::new(kind, mode);
        c.servers = 2;
        c.threads = 2;
        c.requests_per_server = 12;
        c
    }

    #[test]
    fn apache_farm_serves_benign_traffic_fully() {
        let mut c = quick(ServerKind::Apache, Mode::FailureOblivious);
        c.attack_ratio = (0, 1);
        let r = run_farm(&c);
        assert_eq!(r.stats.requests, 24);
        assert_eq!(r.stats.completed, 24);
        assert_eq!(r.stats.deaths, 0);
        assert_eq!(r.stats.servers_down, 0);
        assert_eq!(r.stats.restart_cycles, 0);
        assert_eq!(r.stats.service_cycles(), r.stats.total_cycles);
        assert!(r.stats.latency_p50 > 0);
        assert!(r.stats.latency_max >= r.stats.latency_p99);
    }

    #[test]
    fn farm_report_is_thread_count_invariant() {
        let c = quick(ServerKind::Apache, Mode::BoundsCheck);
        let one = run_farm(&c.clone().with_threads(1));
        let two = run_farm(&c.with_threads(2));
        assert_eq!(one, two);
    }

    #[test]
    fn farm_report_is_table_backend_invariant() {
        // The backend is a pure performance knob: reports (stats,
        // per-server breakdowns, histograms) must compare equal across
        // all three, in a mode with restarts in play.
        let c = quick(ServerKind::Apache, Mode::BoundsCheck).with_attack_ratio(1, 4);
        let splay = run_farm(&c.clone().with_table(TableKind::Splay));
        let btree = run_farm(&c.clone().with_table(TableKind::BTree));
        let flat = run_farm(&c.with_table(TableKind::Flat));
        assert_eq!(splay, btree);
        assert_eq!(splay, flat);
    }

    #[test]
    fn tail_attribution_splits_restart_overhead_from_service() {
        // Bounds Check Apache under heavy attack: every attack kills the
        // child, so the histograms carry both populations.
        let mut c = quick(ServerKind::Apache, Mode::BoundsCheck);
        c.requests_per_server = 20;
        c.attack_ratio = (1, 3);
        let r = run_farm(&c);
        assert!(r.stats.deaths > 0, "attacks must kill BC children");
        assert!(r.stats.restart_hist.count() > 0);
        assert_eq!(
            r.stats.restart_hist.total(),
            r.stats.restart_cycles,
            "every restart cycle appears in the restart histogram"
        );
        assert_eq!(r.stats.service_hist.count(), r.stats.completed);
        assert!(
            r.stats.service_hist.total() + r.stats.restart_hist.total() <= r.stats.total_cycles,
            "histogram mass stays within the cycle ledger",
        );
        // Bounds Check Sendmail is the §4.4.4 worst case: the farm never
        // serves, every charged cycle is restart overhead, so the whole
        // tail is restart-owned.
        let dead = run_farm(&quick(ServerKind::Sendmail, Mode::BoundsCheck));
        assert_eq!(dead.stats.service_hist.count(), 0);
        assert_eq!(dead.stats.tail_service_cycles, 0);
        assert!(
            dead.stats.tail_restart_cycles > 0,
            "a dead farm's tail is pure restart overhead"
        );
        // Failure-oblivious never restarts: its tail is pure service.
        let fo = run_farm(&{
            let mut c = c.clone();
            c.mode = Mode::FailureOblivious;
            c
        });
        assert_eq!(fo.stats.restart_hist.count(), 0);
        assert_eq!(fo.stats.tail_restart_cycles, 0);
        assert!(fo.stats.tail_service_cycles > 0);
        assert!(fo.stats.latency_p999 >= fo.stats.latency_p99);
        assert!(fo.stats.latency_max >= fo.stats.latency_p999);
    }

    #[test]
    fn farm_report_is_slice_grain_invariant() {
        // The scheduling grain decides how often servers hop threads,
        // never what their streams compute.
        let c = quick(ServerKind::Pine, Mode::FailureOblivious).with_attack_ratio(1, 4);
        let fine = run_farm(&c.clone().with_slice(1));
        let medium = run_farm(&c.clone().with_slice(5));
        let whole = run_farm(&c.with_slice(usize::MAX));
        assert_eq!(fine, medium);
        assert_eq!(fine, whole);
    }

    #[test]
    fn bounds_check_sendmail_farm_is_down() {
        // §4.4.4: the daemon dies during init; restarts die the same way.
        let c = quick(ServerKind::Sendmail, Mode::BoundsCheck);
        let r = run_farm(&c);
        assert_eq!(r.stats.completed, 0);
        assert_eq!(r.stats.dropped, r.stats.requests);
        assert_eq!(r.stats.servers_down, 2);
        assert_eq!(r.stats.restarts, 2 * u64::from(c.restart_budget));
        assert_eq!(
            r.stats.restart_cycles,
            r.stats.restarts * RESTART_COST_CYCLES,
            "every charged cycle of a dead farm is restart overhead",
        );
    }

    #[test]
    fn fo_farm_survives_attacks_everywhere() {
        for kind in ServerKind::ALL {
            let mut c = quick(kind, Mode::FailureOblivious);
            c.attack_ratio = (1, 3);
            let r = run_farm(&c);
            assert_eq!(r.stats.deaths, 0, "{} FO farm must not die", kind.name());
            assert_eq!(
                r.stats.completed,
                r.stats.requests,
                "{} FO farm must answer everything",
                kind.name()
            );
            assert!(r.stats.attacks > 0, "{} stream had no attacks", kind.name());
        }
    }

    #[test]
    fn aggregate_of_empty_and_zero_completion_stats_pins_defaults() {
        // The empty-latency guard: an aggregate with no completed
        // requests must leave every percentile, histogram, and tail
        // field at its default instead of indexing an empty vector or
        // dividing by zero.
        assert_eq!(aggregate(&[]), FarmStats::default());

        // Zero completions with nonzero traffic (every request dropped,
        // the §4.4.4 dead-farm shape): counters flow through, derived
        // latency fields stay pinned at zero.
        let stats = ServerStats {
            requests: 5,
            dropped: 5,
            attacks: 2,
            ..ServerStats::default()
        };
        let agg = aggregate(&[stats]);
        assert_eq!(agg.requests, 5);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.latency_mean_millicycles, 0);
        assert_eq!(agg.latency_p50, 0);
        assert_eq!(agg.latency_p90, 0);
        assert_eq!(agg.latency_p99, 0);
        assert_eq!(agg.latency_p999, 0);
        assert_eq!(agg.latency_max, 0);
        assert_eq!(agg.service_hist, LatencyHist::default());
        assert_eq!(agg.restart_hist, LatencyHist::default());
        assert_eq!(agg.tail_service_cycles, 0);
        assert_eq!(agg.tail_restart_cycles, 0);
        assert_eq!(agg.survival_rate(), 0.0);
        assert_eq!(agg.throughput_per_mcycle(), 0.0);
    }

    #[test]
    fn many_servers_interleave_over_few_threads() {
        // More servers than threads: the deques must cycle everything
        // through without losing a stream.
        let mut c = FarmConfig::new(ServerKind::Apache, Mode::FailureOblivious);
        c.servers = 9;
        c.threads = 2;
        c.requests_per_server = 7;
        c.slice_requests = 2;
        c.attack_ratio = (1, 5);
        let r = run_farm(&c);
        assert_eq!(r.per_server.len(), 9);
        assert_eq!(r.stats.requests, 63);
        assert_eq!(r.stats.completed, 63);
        assert_eq!(r, run_farm(&c.clone().with_threads(4).with_slice(3)));
    }
}
