//! The server farm: a multi-threaded load harness that generalizes the
//! Apache regenerating-pool architecture to all five servers of the
//! paper's evaluation.
//!
//! A farm boots `servers` independent guest processes of one
//! [`ServerKind`] under one [`Mode`], spreads them over `threads` OS
//! threads, and drives each with its own deterministic seeded request
//! stream mixing legitimate traffic with attacks at a configured ratio.
//! A supervisor policy restarts dead processes (recompiling and
//! replaying initialization, which for persistent triggers — Pine's
//! poisoned mailbox, Sendmail's wake-up error under Bounds Check — dies
//! again, exactly the §4.7 situation) until a per-server restart budget
//! is exhausted; after that the server is down and its remaining
//! requests are dropped connections.
//!
//! **Determinism contract.** Every request stream is a pure function of
//! `(seed, server index)`, each server's guest machines are fully
//! deterministic (virtual clock, no host time), and aggregation runs in
//! server-index order after all threads join. Therefore two farm runs
//! with the same config but different `threads` values produce
//! [`FarmReport`]s that compare equal (`PartialEq` ignores the one
//! host-side measurement, wall time). The property tests assert this;
//! the scaling bins rely on it to attribute wall-time differences to
//! parallelism alone.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use foc_memory::Mode;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{apache, mc, mutt, pine, sendmail, workload, Measured, Outcome};

/// Which of the paper's five servers the farm is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Apache httpd worker (mod_rewrite offsets overflow, §4.3).
    Apache,
    /// Sendmail daemon (prescan overflow, §4.4).
    Sendmail,
    /// Pine mail reader (From-quoting overflow, §4.2).
    Pine,
    /// Mutt mail reader (UTF-8→UTF-7 overflow, §4.6 / Figure 1).
    Mutt,
    /// Midnight Commander (symlink-path overflow, §4.5).
    Mc,
}

impl ServerKind {
    /// All five servers, in the paper's presentation order.
    pub const ALL: [ServerKind; 5] = [
        ServerKind::Pine,
        ServerKind::Apache,
        ServerKind::Sendmail,
        ServerKind::Mc,
        ServerKind::Mutt,
    ];

    /// Human-readable server name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Apache => "Apache",
            ServerKind::Sendmail => "Sendmail",
            ServerKind::Pine => "Pine",
            ServerKind::Mutt => "Mutt",
            ServerKind::Mc => "MC",
        }
    }
}

/// Virtual cycles charged for forking and re-initialising a replacement
/// process (shared with the Apache pool's accounting).
pub const RESTART_COST_CYCLES: u64 = apache::RESTART_COST_CYCLES;

/// Farm shape and workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmConfig {
    /// Which server to run.
    pub kind: ServerKind,
    /// Compiler/runtime policy for every process in the farm.
    pub mode: Mode,
    /// Number of independent server processes.
    pub servers: usize,
    /// Number of OS threads driving them (clamped to `servers`).
    pub threads: usize,
    /// Requests delivered to each server process.
    pub requests_per_server: usize,
    /// Root seed; server `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Probability that a request is an attack, as `(num, den)`.
    /// `(0, 1)` yields pure legitimate traffic.
    pub attack_ratio: (u32, u32),
    /// Restart attempts the supervisor grants each server process before
    /// declaring it down.
    pub restart_budget: u32,
}

impl FarmConfig {
    /// A farm of `kind` under `mode` with the default shape: 4 servers,
    /// 4 threads, 100 requests per server, 1-in-8 attacks.
    pub fn new(kind: ServerKind, mode: Mode) -> FarmConfig {
        FarmConfig {
            kind,
            mode,
            servers: 4,
            threads: 4,
            requests_per_server: 100,
            seed: 0xF0C_0001,
            attack_ratio: (1, 8),
            restart_budget: 8,
        }
    }

    /// Same farm with a different thread count (scaling sweeps).
    pub fn with_threads(mut self, threads: usize) -> FarmConfig {
        self.threads = threads;
        self
    }

    /// Same farm with a different attack ratio.
    pub fn with_attack_ratio(mut self, num: u32, den: u32) -> FarmConfig {
        self.attack_ratio = (num, den);
        self
    }
}

/// What happened on one server process over its whole request stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests attempted (attacks included; counts connections refused
    /// while the server was down).
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Requests lost to a dead or down process.
    pub dropped: u64,
    /// Attack requests within `requests` (attempted, like `requests`).
    pub attacks: u64,
    /// Process deaths observed while serving.
    pub deaths: u64,
    /// Restart attempts the supervisor made.
    pub restarts: u64,
    /// Whether the process was down (unusable, budget exhausted) when the
    /// stream ended.
    pub down_at_end: bool,
    /// Virtual cycles spent serving plus restart overhead.
    pub total_cycles: u64,
    /// Per-completed-request virtual latencies, in stream order.
    pub latencies: Vec<u64>,
}

/// Deterministic farm-wide aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Total requests attempted across the farm (refused connections
    /// included).
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Dropped connections.
    pub dropped: u64,
    /// Attack requests attempted.
    pub attacks: u64,
    /// Process deaths across the farm.
    pub deaths: u64,
    /// Supervisor restart attempts.
    pub restarts: u64,
    /// Servers down when their streams ended.
    pub servers_down: u64,
    /// Virtual cycles spent farm-wide (serving + restarts).
    pub total_cycles: u64,
    /// Mean completed-request latency in millicycles (fixed point, so the
    /// aggregate stays `Eq`-comparable).
    pub latency_mean_millicycles: u64,
    /// Median completed-request latency (virtual cycles).
    pub latency_p50: u64,
    /// 90th-percentile latency.
    pub latency_p90: u64,
    /// 99th-percentile latency.
    pub latency_p99: u64,
    /// Worst completed-request latency.
    pub latency_max: u64,
}

impl FarmStats {
    /// Fraction of requests that completed.
    pub fn survival_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.completed as f64 / self.requests as f64
    }

    /// Completed requests per virtual megacycle — the farm's throughput
    /// in virtual time (host-independent).
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.total_cycles as f64 / 1e6)
    }
}

/// The result of one farm run. `PartialEq` compares everything except
/// `host_wall_ms` (the only host-time measurement), so reports from runs
/// with identical configs and seeds compare equal regardless of thread
/// count.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// The configuration that produced this report.
    pub config: FarmConfig,
    /// Farm-wide aggregate (server-index order, thread-independent).
    pub stats: FarmStats,
    /// Per-server breakdown, indexed by server.
    pub per_server: Vec<ServerStats>,
    /// Host wall-clock time for the whole run, in milliseconds. Excluded
    /// from `PartialEq`.
    pub host_wall_ms: f64,
}

impl PartialEq for FarmReport {
    fn eq(&self, other: &FarmReport) -> bool {
        let a = &self.config;
        let b = &other.config;
        // Thread count is excluded: it shapes host wall time only, never
        // the measured data — that is the determinism contract.
        a.kind == b.kind
            && a.mode == b.mode
            && a.servers == b.servers
            && a.requests_per_server == b.requests_per_server
            && a.seed == b.seed
            && a.attack_ratio == b.attack_ratio
            && a.restart_budget == b.restart_budget
            && self.stats == other.stats
            && self.per_server == other.per_server
    }
}

impl FarmReport {
    /// Completed requests per host second — the farm's host-side
    /// throughput (what the scaling sweep measures).
    pub fn host_throughput_rps(&self) -> f64 {
        if self.host_wall_ms <= 0.0 {
            return 0.0;
        }
        self.stats.completed as f64 / (self.host_wall_ms / 1e3)
    }
}

/// One guest server process under farm supervision.
enum FarmProcess {
    Apache(apache::ApacheWorker),
    Sendmail(sendmail::Sendmail),
    Pine {
        pine: pine::Pine,
        /// Driver-side view of the mailbox size (read-index domain).
        messages: i64,
    },
    Mutt(mutt::Mutt),
    Mc {
        mc: mc::Mc,
        /// Monotonic counter for unique file names.
        files: u64,
    },
}

/// Messages every Pine farm process starts with.
const PINE_SEED_MESSAGES: usize = 3;
/// Messages every Mutt farm process starts with.
const MUTT_SEED_MESSAGES: usize = 2;

impl FarmProcess {
    fn boot(kind: ServerKind, mode: Mode) -> FarmProcess {
        match kind {
            ServerKind::Apache => FarmProcess::Apache(apache::ApacheWorker::boot(mode)),
            ServerKind::Sendmail => FarmProcess::Sendmail(sendmail::Sendmail::boot(mode)),
            ServerKind::Pine => FarmProcess::Pine {
                pine: pine::Pine::boot(mode, pine::Pine::standard_mailbox(PINE_SEED_MESSAGES)),
                messages: PINE_SEED_MESSAGES as i64,
            },
            ServerKind::Mutt => FarmProcess::Mutt(mutt::Mutt::boot(mode, MUTT_SEED_MESSAGES)),
            ServerKind::Mc => FarmProcess::Mc {
                mc: mc::Mc::boot(mode, &mc::clean_config()),
                files: 0,
            },
        }
    }

    /// Whether the process can serve requests.
    fn usable(&self) -> bool {
        match self {
            FarmProcess::Apache(w) => !w.is_dead(),
            FarmProcess::Sendmail(s) => s.usable(),
            FarmProcess::Pine { pine, .. } => pine.usable(),
            FarmProcess::Mutt(m) => !m.process().is_dead(),
            FarmProcess::Mc { mc, .. } => mc.usable(),
        }
    }

    /// Replaces the dead process, preserving persistent environment (the
    /// Pine mailbox survives restarts — it is the mail file on disk).
    fn restart(&mut self, kind: ServerKind, mode: Mode) {
        match self {
            FarmProcess::Pine { pine, .. } => pine.restart(),
            other => *other = FarmProcess::boot(kind, mode),
        }
    }

    /// Serves one generated request. All request content derives from
    /// `rng`, which must be dedicated to this server's stream.
    fn serve(&mut self, rng: &mut StdRng, attack: bool) -> Measured {
        match self {
            FarmProcess::Apache(w) => {
                if attack {
                    return w.get(&apache::attack_url());
                }
                match rng.gen_range(0u32..10) {
                    0..=5 => w.get(b"/index.html"),
                    6..=7 => w.get(b"/rw/index.html"),
                    8 => w.get(b"/big.bin"),
                    _ => w.get(b"/nosuchpage.html"),
                }
            }
            FarmProcess::Sendmail(s) => {
                if attack {
                    let to = workload::sendmail_address(rng.next_u64());
                    return s.receive(&sendmail::attack_address(40), &to, b"attack payload");
                }
                match rng.gen_range(0u32..10) {
                    0..=6 => {
                        let from = workload::sendmail_address(rng.next_u64());
                        let to = workload::sendmail_address(rng.next_u64());
                        let body = workload::lorem(160, rng.next_u64());
                        s.receive(&from, &to, &body)
                    }
                    7..=8 => {
                        let to = workload::sendmail_address(rng.next_u64());
                        let body = workload::lorem(200, rng.next_u64());
                        s.send(&to, &body)
                    }
                    _ => s.wakeup(),
                }
            }
            FarmProcess::Pine { pine, messages } => {
                if attack {
                    // The poisoned message persists in the mailbox: every
                    // restart replays it (§4.7).
                    let r = pine.deliver(&pine::attack_from(40), b"pwn", b"payload");
                    if r.outcome.survived() {
                        *messages += 1;
                    }
                    return r;
                }
                match rng.gen_range(0u32..10) {
                    0..=2 => {
                        let from = workload::from_field(rng.next_u64());
                        let body = workload::lorem(300, rng.next_u64());
                        let r = pine.deliver(&from, b"new mail", &body);
                        if r.outcome.survived() {
                            *messages += 1;
                        }
                        r
                    }
                    3..=6 => pine.read(rng.gen_range(0..(*messages).max(1))),
                    7..=8 => pine.compose(),
                    _ => pine.move_message(rng.gen_range(0..(*messages).max(1))),
                }
            }
            FarmProcess::Mutt(m) => {
                if attack {
                    return m.open_folder(&mutt::attack_folder_name(40));
                }
                match rng.gen_range(0u32..10) {
                    0..=3 => m.open_folder(b"INBOX"),
                    4..=8 => m.read_message(rng.gen_range(0..MUTT_SEED_MESSAGES as i64)),
                    _ => m.open_folder(b"work"),
                }
            }
            FarmProcess::Mc { mc, files } => {
                if attack {
                    return mc.open_archive(&mc::attack_links());
                }
                match rng.gen_range(0u32..10) {
                    0..=3 => {
                        *files += 1;
                        let dst = format!("/tmp/copy{files}");
                        mc.copy(b"/home/user/data.bin", dst.as_bytes())
                    }
                    4..=5 => {
                        *files += 1;
                        let dir = format!("/tmp/dir{files}");
                        mc.mkdir(dir.as_bytes())
                    }
                    6..=7 => mc.component_end(b"usr/share/component/lib"),
                    _ => {
                        let victim = format!("/tmp/copy{files}");
                        mc.delete(victim.as_bytes())
                    }
                }
            }
        }
    }
}

/// Derives server `index`'s stream seed from the farm seed (SplitMix64
/// finalizer, so neighbouring indices get unrelated streams).
fn server_seed(farm_seed: u64, index: usize) -> u64 {
    let mut z = farm_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Restarts `process` until it serves again or the budget runs out,
/// charging each attempt to the server's stats.
fn supervise(process: &mut FarmProcess, stats: &mut ServerStats, config: &FarmConfig) {
    while !process.usable() && stats.restarts < u64::from(config.restart_budget) {
        stats.restarts += 1;
        stats.total_cycles += RESTART_COST_CYCLES;
        process.restart(config.kind, config.mode);
    }
}

/// Runs one server's entire request stream. Pure function of the config
/// and the server index — the unit of parallelism.
fn run_server(config: &FarmConfig, index: usize) -> ServerStats {
    let mut rng = StdRng::seed_from_u64(server_seed(config.seed, index));
    let mut stats = ServerStats::default();
    let mut process = FarmProcess::boot(config.kind, config.mode);

    // Some servers die during initialization (Bounds Check Sendmail's
    // wake-up, §4.4.4). The supervisor burns restart budget up front.
    supervise(&mut process, &mut stats, config);

    for _ in 0..config.requests_per_server {
        stats.requests += 1;
        let attack = config.attack_ratio.0 > 0
            && rng.gen_ratio(config.attack_ratio.0, config.attack_ratio.1);
        if attack {
            stats.attacks += 1;
        }

        if !process.usable() {
            // Down and out of budget: the connection is refused.
            stats.dropped += 1;
            continue;
        }

        let measured = process.serve(&mut rng, attack);
        stats.total_cycles += measured.cycles;
        match measured.outcome {
            Outcome::Done { .. } => {
                stats.completed += 1;
                stats.latencies.push(measured.cycles);
            }
            Outcome::Crashed(_) => {
                stats.dropped += 1;
                stats.deaths += 1;
                supervise(&mut process, &mut stats, config);
            }
        }
    }

    stats.down_at_end = !process.usable();
    stats
}

/// Aggregates per-server stats in server-index order (making the result
/// independent of which thread ran which server).
fn aggregate(per_server: &[ServerStats]) -> FarmStats {
    let mut agg = FarmStats::default();
    let mut latencies: Vec<u64> = Vec::new();
    for s in per_server {
        agg.requests += s.requests;
        agg.completed += s.completed;
        agg.dropped += s.dropped;
        agg.attacks += s.attacks;
        agg.deaths += s.deaths;
        agg.restarts += s.restarts;
        agg.servers_down += u64::from(s.down_at_end);
        agg.total_cycles += s.total_cycles;
        latencies.extend_from_slice(&s.latencies);
    }
    if !latencies.is_empty() {
        latencies.sort_unstable();
        let total: u64 = latencies.iter().sum();
        agg.latency_mean_millicycles = total * 1000 / latencies.len() as u64;
        let pick = |p: usize| latencies[(latencies.len() - 1) * p / 100];
        agg.latency_p50 = pick(50);
        agg.latency_p90 = pick(90);
        agg.latency_p99 = pick(99);
        agg.latency_max = *latencies.last().unwrap();
    }
    agg
}

/// Runs the farm: boots `config.servers` processes, drives them from
/// `config.threads` OS threads, and aggregates deterministically.
///
/// # Panics
///
/// Panics when `config.servers == 0` or `config.requests_per_server == 0`
/// (an empty farm is a harness bug, not a measurement), or when a worker
/// thread panics.
pub fn run_farm(config: &FarmConfig) -> FarmReport {
    assert!(config.servers > 0, "farm needs at least one server");
    assert!(
        config.requests_per_server > 0,
        "farm needs at least one request per server"
    );
    let threads = config.threads.clamp(1, config.servers);
    let started = Instant::now();

    let next: AtomicUsize = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ServerStats>>> = Mutex::new(vec![None; config.servers]);

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= config.servers {
                    break;
                }
                let stats = run_server(config, index);
                slots.lock().expect("farm result lock")[index] = Some(stats);
            });
        }
    });

    let per_server: Vec<ServerStats> = slots
        .into_inner()
        .expect("farm result lock")
        .into_iter()
        .map(|s| s.expect("every server slot filled"))
        .collect();
    let stats = aggregate(&per_server);

    FarmReport {
        config: config.clone(),
        stats,
        per_server,
        host_wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one farm per mode for a fixed kind — the cross-mode comparison
/// the paper's throughput figures make, at farm scale.
pub fn run_mode_sweep(kind: ServerKind, base: &FarmConfig) -> Vec<FarmReport> {
    Mode::ALL
        .iter()
        .map(|&mode| {
            let mut config = base.clone();
            config.kind = kind;
            config.mode = mode;
            run_farm(&config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ServerKind, mode: Mode) -> FarmConfig {
        let mut c = FarmConfig::new(kind, mode);
        c.servers = 2;
        c.threads = 2;
        c.requests_per_server = 12;
        c
    }

    #[test]
    fn apache_farm_serves_benign_traffic_fully() {
        let mut c = quick(ServerKind::Apache, Mode::FailureOblivious);
        c.attack_ratio = (0, 1);
        let r = run_farm(&c);
        assert_eq!(r.stats.requests, 24);
        assert_eq!(r.stats.completed, 24);
        assert_eq!(r.stats.deaths, 0);
        assert_eq!(r.stats.servers_down, 0);
        assert!(r.stats.latency_p50 > 0);
        assert!(r.stats.latency_max >= r.stats.latency_p99);
    }

    #[test]
    fn farm_report_is_thread_count_invariant() {
        let c = quick(ServerKind::Apache, Mode::BoundsCheck);
        let one = run_farm(&c.clone().with_threads(1));
        let two = run_farm(&c.with_threads(2));
        assert_eq!(one, two);
    }

    #[test]
    fn bounds_check_sendmail_farm_is_down() {
        // §4.4.4: the daemon dies during init; restarts die the same way.
        let r = run_farm(&quick(ServerKind::Sendmail, Mode::BoundsCheck));
        assert_eq!(r.stats.completed, 0);
        assert_eq!(r.stats.dropped, r.stats.requests);
        assert_eq!(r.stats.servers_down, 2);
        assert_eq!(r.stats.restarts, 2 * 8);
    }

    #[test]
    fn fo_farm_survives_attacks_everywhere() {
        for kind in ServerKind::ALL {
            let mut c = quick(kind, Mode::FailureOblivious);
            c.attack_ratio = (1, 3);
            let r = run_farm(&c);
            assert_eq!(r.stats.deaths, 0, "{} FO farm must not die", kind.name());
            assert_eq!(
                r.stats.completed,
                r.stats.requests,
                "{} FO farm must answer everything",
                kind.name()
            );
            assert!(r.stats.attacks > 0, "{} stream had no attacks", kind.name());
        }
    }
}
