//! Pine 4.44 (§4.2): the From-field quoting overflow.
//!
//! When Pine builds the message-index display it transfers each message's
//! From field into a heap-allocated buffer, inserting `\` before every
//! quoted character. "The procedure that calculates the maximum possible
//! length of the character buffer fails to correctly account for the
//! potential increase and produces a length that is too short for messages
//! whose From fields contain many quoted characters."
//!
//! Crucially, this runs while the mail file is loaded — before the user
//! can interact at all — so (§4.2.2):
//!
//! * **Standard** — heap overflow, allocator corruption, segfault during
//!   initialization; the user cannot read mail at all until the message is
//!   removed by other means.
//! * **Bounds Check** — memory error during initialization; same denial
//!   of service.
//! * **Failure Oblivious** — the out-of-bounds writes are discarded (the
//!   index entry is truncated, which the index UI hides anyway since it
//!   shows only an initial segment); selecting the message takes a
//!   different, correct path that displays the complete From field.

use std::sync::Arc;

use foc_compiler::ProgramImage;
use foc_memory::{Mode, TableKind};
use foc_vm::VmFault;

use crate::image::{self, ServerKind};
use crate::workload;
use crate::{BootSpec, Measured, Outcome, Process, ProcessCheckpoint};

/// MiniC source of the Pine model.
pub const PINE_SOURCE: &str = r#"
/* ---- Message store ---------------------------------------------------- */

struct pmsg {
    int used;
    char from[192];
    char subject[64];
    char body[1024];
};

struct pmsg msgs[128];
int nmsgs = 0;
char index_disp[128][48];
int index_built = 0;

char addressbook[32][48];
int naddr = 0;

/* The vulnerable quoting path used for the message index: the allocation
   accounts for the original length only, not for the inserted
   backslashes. */
char *quote_from_for_index(char *from) {
    size_t len = strlen(from);
    char *buf = (char *) malloc(len + 1);   /* BUG: quoting can grow the string */
    char *p = buf;
    while (*from) {
        char c = *from;
        if (c == '"' || c == '\\') *p++ = '\\';
        *p++ = c;
        from++;
    }
    *p = '\0';
    return buf;
}

/* The correct quoting path used when a message is displayed. */
char *quote_from_full(char *from) {
    size_t len = strlen(from);
    char *buf = (char *) malloc(len * 2 + 1);
    char *p = buf;
    while (*from) {
        char c = *from;
        if (c == '"' || c == '\\') *p++ = '\\';
        *p++ = c;
        from++;
    }
    *p = '\0';
    return buf;
}

int pine_init() {
    int i;
    /* Address book used by compose completion. */
    for (i = 0; i < 24; i++) {
        char *a = addressbook[i];
        strcpy(a, "colleague");
        a[9] = '0' + i % 10;
        a[10] = '\0';
        strcat(a, "@example.org");
        naddr = i + 1;
    }
    /* Spool read scratch: freed, so index quoting allocates mid-heap with
       allocator metadata after it. */
    char *scratch = (char *) malloc(512);
    scratch[0] = 'x';
    free(scratch);
    return 0;
}

int pine_add_message(char *from, char *subject, char *body) {
    if (nmsgs >= 128) return -1;
    msgs[nmsgs].used = 1;
    strncpy(msgs[nmsgs].from, from, 191);
    msgs[nmsgs].from[191] = '\0';
    strncpy(msgs[nmsgs].subject, subject, 63);
    msgs[nmsgs].subject[63] = '\0';
    strncpy(msgs[nmsgs].body, body, 1023);
    msgs[nmsgs].body[1023] = '\0';
    nmsgs++;
    return nmsgs - 1;
}

/* Renders one index entry through the vulnerable path. */
int pine_index_entry(int i) {
    char *q = quote_from_for_index(msgs[i].from);
    strncpy(index_disp[i], q, 47);
    index_disp[i][47] = '\0';
    free(q);
    return 0;
}

/* Runs while the mail file is loaded, before the UI comes up. */
int pine_build_index() {
    int i;
    io_wait(256);
    for (i = 0; i < nmsgs; i++) pine_index_entry(i);
    index_built = 1;
    return 0;
}

/* Read request: display a selected message (pure UI work). */
int pine_read(int idx) {
    if (!index_built) return -3;
    if (idx < 0 || idx >= nmsgs) return -1;
    if (!msgs[idx].used) return -1;
    /* Correct full translation of the From field. */
    char *q = quote_from_full(msgs[idx].from);
    print_str("From: ");
    print_str(q);
    print_str("\n");
    free(q);
    /* Redraw the visible index page. */
    int i;
    for (i = 0; i < nmsgs && i < 24; i++) {
        print_str(index_disp[i]);
        print_str("\n");
    }
    /* Render the body with line wrapping. */
    char *s = msgs[idx].body;
    int col = 0;
    int lines = 0;
    while (*s) {
        col++;
        if (col >= 80 || *s == '\n') { lines++; col = 0; }
        s++;
    }
    return lines >= 0 ? 0 : -1;
}

/* Compose request: bring up the composer (address completion, template). */
int pine_compose() {
    if (!index_built) return -3;
    char tmpl[2600];
    char *p = tmpl;
    int i;
    int round;
    /* Completion index over the address book, built each time. */
    for (round = 0; round < 3; round++) {
        p = tmpl;
        for (i = 0; i < naddr; i++) {
            char *s = addressbook[i];
            while (*s) {
                char c = *s;
                if (c == '@') *p++ = '%';
                if (c >= 'a' && c <= 'z' && round == 1) c = c - 32;
                *p++ = c;
                s++;
            }
            *p++ = ';';
        }
        *p = '\0';
    }
    return (int) strlen(tmpl) > 0 ? 0 : -1;
}

/* Move request: move a message between folders — folder file I/O plus
   the header rewrite appended to the destination folder. */
char foldbuf[300];
int pine_move(int idx) {
    if (!index_built) return -3;
    if (idx < 0 || idx >= nmsgs) return -1;
    if (!msgs[idx].used) return -1;
    strncpy(foldbuf, msgs[idx].body, 256);
    foldbuf[256] = '\0';
    io_wait(4096);
    io_wait(512);
    msgs[idx].used = 0;
    return 0;
}

int pine_message_count() {
    int i; int n = 0;
    for (i = 0; i < nmsgs; i++) if (msgs[i].used) n++;
    return n;
}
"#;

/// A Pine process plus the driver-side mailbox replay state.
pub struct Pine {
    proc: Process,
    /// The mail file: replayed into any restarted process (the mailbox
    /// persists on disk even when the reader crashes).
    mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    /// Outcome of the initial index build (the init-time vulnerability).
    init_outcome: Outcome,
    /// Snapshot of the process after `pine_init` plus the boot-time
    /// mailbox adds, taken *before* the index build: the restart base.
    /// A restart restores it and replays only the messages delivered
    /// since boot plus the index build — the exact call sequence a
    /// from-scratch boot performs, so the restarted reader is
    /// byte-identical to one that re-read the whole mail file, at
    /// O(delta) instead of O(mailbox) cost.
    restart_base: Option<Arc<ProcessCheckpoint>>,
    /// Messages of `mailbox` already loaded in `restart_base`.
    base_messages: usize,
}

/// A frozen standard boot of Pine (see [`crate::image::boot_checkpoint`]).
pub struct PineCheckpoint {
    booted: ProcessCheckpoint,
    init_outcome: Outcome,
    mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    restart_base: Option<Arc<ProcessCheckpoint>>,
    base_messages: usize,
}

/// A From field that triggers the quoting overflow: `quoted` characters
/// that each grow by one byte.
pub fn attack_from(quoted: usize) -> Vec<u8> {
    workload::pine_attack_from(quoted)
}

impl Pine {
    /// Legacy convenience over [`Pine::boot_spec`] with a default spec
    /// for `mode`; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot(mode: Mode, mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>) -> Pine {
        Pine::boot_spec(&BootSpec::new(ServerKind::Pine, mode), mailbox)
    }

    /// Legacy convenience over [`Pine::boot_spec`] for the mode × table
    /// subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_table(
        mode: Mode,
        table: TableKind,
        mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    ) -> Pine {
        Pine::boot_spec(
            &BootSpec::new(ServerKind::Pine, mode).with_table(table),
            mailbox,
        )
    }

    /// Legacy convenience over [`Pine::boot_image_spec`]; prefer
    /// constructing a [`BootSpec`] at the call site.
    pub fn boot_image(
        image: &ProgramImage,
        mode: Mode,
        mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    ) -> Pine {
        Pine::boot_image_spec(image, &BootSpec::new(ServerKind::Pine, mode), mailbox)
    }

    /// Legacy convenience over [`Pine::boot_image_spec`] for the mode ×
    /// table subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_image_table(
        image: &ProgramImage,
        mode: Mode,
        table: TableKind,
        mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    ) -> Pine {
        Pine::boot_image_spec(
            image,
            &BootSpec::new(ServerKind::Pine, mode).with_table(table),
            mailbox,
        )
    }

    /// Boots Pine from a full [`BootSpec`] (interned image). The
    /// standard seed mailbox restores from the per-spec boot-checkpoint
    /// cache instead of replaying initialization.
    pub fn boot_spec(spec: &BootSpec, mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>) -> Pine {
        if &mailbox == image::standard_pine_mailbox() {
            let ckpt = image::boot_checkpoint(ServerKind::Pine, spec);
            let image::ServerCheckpoint::Pine(pine) = ckpt.as_ref() else {
                unreachable!("Pine cache slot holds a Pine checkpoint");
            };
            return Pine::restore(pine);
        }
        Pine::boot_image_spec(&ServerKind::Pine.image_tier(spec.tier), spec, mailbox)
    }

    /// Boots Pine from an explicit image and a full [`BootSpec`],
    /// bypassing the checkpoint cache (the cache's own fill path, and
    /// the differential baseline the equivalence tests compare against).
    pub fn boot_image_spec(
        image: &ProgramImage,
        spec: &BootSpec,
        mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    ) -> Pine {
        let mut proc = Process::boot_spec(image, spec);
        let r = proc.request("pine_init", &[]);
        assert!(r.outcome.survived(), "pine_init cannot fail");
        let mut pine = Pine {
            proc,
            mailbox,
            init_outcome: Outcome::Done {
                ret: -99,
                output: Vec::new(),
            },
            restart_base: None,
            base_messages: 0,
        };
        pine.load_mailbox();
        pine
    }

    /// Freezes this reader's full state (see
    /// [`crate::image::boot_checkpoint`]).
    pub fn checkpoint(&self) -> PineCheckpoint {
        PineCheckpoint {
            booted: self.proc.checkpoint(),
            init_outcome: self.init_outcome.clone(),
            mailbox: self.mailbox.clone(),
            restart_base: self.restart_base.clone(),
            base_messages: self.base_messages,
        }
    }

    /// Materialises a reader in exactly the captured state.
    pub fn restore(ckpt: &PineCheckpoint) -> Pine {
        Pine {
            proc: Process::restore(&ckpt.booted),
            mailbox: ckpt.mailbox.clone(),
            init_outcome: ckpt.init_outcome.clone(),
            restart_base: ckpt.restart_base.clone(),
            base_messages: ckpt.base_messages,
        }
    }

    /// A standard mailbox of `n` ordinary messages.
    pub fn standard_mailbox(n: usize) -> Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    workload::from_field(i as u64),
                    format!("subject {i}").into_bytes(),
                    workload::lorem(700, 100 + i as u64),
                )
            })
            .collect()
    }

    fn load_mailbox(&mut self) {
        self.add_messages(0);
        // Freeze the pre-index state: `pine_init` plus every boot-time
        // add is captured here, so restarts restore this base and replay
        // only the delta (messages delivered after boot) before the
        // index build — the same call sequence as a fresh boot.
        if !self.proc.is_dead() {
            self.restart_base = Some(Arc::new(self.proc.checkpoint()));
            self.base_messages = self.mailbox.len();
        }
        self.finish_index();
    }

    /// Feeds `mailbox[from..]` to the running process in order,
    /// stopping early if the process dies mid-replay.
    fn add_messages(&mut self, from: usize) {
        // Split borrows: the mail file is read-only while the process
        // consumes it, so no clone of the message bodies is needed.
        let Pine { proc, mailbox, .. } = self;
        for (from_f, subject, body) in &mailbox[from..] {
            if proc.is_dead() {
                break;
            }
            let f = proc.guest_str(from_f);
            let s = proc.guest_str(subject);
            let b = proc.guest_str(body);
            let r = proc.request("pine_add_message", &[f.arg(), s.arg(), b.arg()]);
            if r.outcome.survived() {
                for p in [f, s, b] {
                    proc.free_guest_str(p);
                }
            }
        }
    }

    /// Runs the index build (the init-time vulnerability) and records
    /// how initialization went.
    fn finish_index(&mut self) {
        self.init_outcome = if self.proc.is_dead() {
            Outcome::Crashed(
                self.proc
                    .machine()
                    .dead_reason()
                    .cloned()
                    .unwrap_or(VmFault::MachineDead),
            )
        } else {
            self.proc.request("pine_build_index", &[]).outcome
        };
    }

    /// How initialization (mail file load) went.
    pub fn init_outcome(&self) -> &Outcome {
        &self.init_outcome
    }

    /// Whether the reader is usable at all.
    pub fn usable(&self) -> bool {
        self.init_outcome.survived() && !self.proc.is_dead()
    }

    /// The underlying process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable process access.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    /// Appends a message to the mail file and delivers it to the running
    /// process (new mail arriving).
    pub fn deliver(&mut self, from: &[u8], subject: &[u8], body: &[u8]) -> Measured {
        self.mailbox
            .push((from.to_vec(), subject.to_vec(), body.to_vec()));
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let f = self.proc.guest_str(from);
        let s = self.proc.guest_str(subject);
        let b = self.proc.guest_str(body);
        let r = self
            .proc
            .request("pine_add_message", &[f.arg(), s.arg(), b.arg()]);
        if !r.outcome.survived() {
            return r;
        }
        let idx = r.outcome.ret().unwrap_or(-1);
        for p in [f, s, b] {
            self.proc.free_guest_str(p);
        }
        // The index view updates as mail arrives: the vulnerable path.
        self.proc.request("pine_index_entry", &[idx])
    }

    /// Figure 2 "Read".
    pub fn read(&mut self, idx: i64) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        self.proc.request("pine_read", &[idx])
    }

    /// Figure 2 "Compose".
    pub fn compose(&mut self) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        self.proc.request("pine_compose", &[])
    }

    /// Figure 2 "Move".
    pub fn move_message(&mut self, idx: i64) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        self.proc.request("pine_move", &[idx])
    }

    /// Restarts the process and replays the mail file — the §4.7 point:
    /// when the bad message is *in the mailbox*, restarting just dies
    /// again during initialization.
    ///
    /// The replay restores the pre-index restart base (init plus the
    /// boot-time mailbox, frozen at boot) and re-runs only the messages
    /// delivered since, then the index build — byte-identical to a
    /// from-scratch boot over the current mail file, but O(1) in the
    /// boot-time environment.
    pub fn restart(&mut self) {
        if let Some(base) = self.restart_base.clone() {
            self.proc = Process::restore(&base);
            self.add_messages(self.base_messages);
            self.finish_index();
            return;
        }
        // No base (the boot itself died mid-replay): a full reboot is
        // the only faithful replay.
        let mailbox = self.mailbox.clone();
        let spec = *self.proc.spec();
        *self = Pine::boot_spec(&spec, mailbox);
    }
}

fn dead(proc: &Process) -> Measured {
    Measured {
        outcome: Outcome::Crashed(
            proc.machine()
                .dead_reason()
                .cloned()
                .unwrap_or(VmFault::MachineDead),
        ),
        cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mailbox_works_everywhere() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut pine = Pine::boot(mode, Pine::standard_mailbox(6));
            assert!(pine.usable(), "mode {mode:?}");
            assert_eq!(pine.read(2).outcome.ret(), Some(0), "mode {mode:?}");
            assert_eq!(pine.compose().outcome.ret(), Some(0), "mode {mode:?}");
            assert_eq!(pine.move_message(1).outcome.ret(), Some(0), "mode {mode:?}");
        }
    }

    #[test]
    fn poisoned_mailbox_kills_standard_at_init() {
        let mut mailbox = Pine::standard_mailbox(4);
        mailbox.insert(2, (attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
        let pine = Pine::boot(Mode::Standard, mailbox);
        assert!(!pine.usable(), "Standard Pine must die loading the mailbox");
        let Outcome::Crashed(f) = pine.init_outcome() else {
            panic!("expected crash");
        };
        assert!(f.is_segfault_like(), "expected heap corruption, got {f}");
    }

    #[test]
    fn poisoned_mailbox_kills_bounds_check_at_init_even_after_restart() {
        let mut mailbox = Pine::standard_mailbox(4);
        mailbox.insert(2, (attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
        let mut pine = Pine::boot(Mode::BoundsCheck, mailbox);
        assert!(!pine.usable());
        let Outcome::Crashed(f) = pine.init_outcome() else {
            panic!("expected termination");
        };
        assert!(f.is_memory_error(), "got {f}");
        // §4.7: restarting is no use — it dies during initialization again.
        pine.restart();
        assert!(!pine.usable(), "restart must die the same way");
    }

    #[test]
    fn failure_oblivious_loads_poisoned_mailbox_and_serves() {
        let mut mailbox = Pine::standard_mailbox(4);
        let bad_idx = 2;
        mailbox.insert(
            bad_idx,
            (attack_from(40), b"pwn".to_vec(), b"body".to_vec()),
        );
        let mut pine = Pine::boot(Mode::FailureOblivious, mailbox);
        assert!(pine.usable(), "FO Pine must survive the poisoned mailbox");
        assert!(
            pine.process().machine().space().error_log().total_writes() > 0,
            "the discarded writes must be logged"
        );
        // All messages remain readable, including the poisoned one, whose
        // full From field is rendered by the correct path.
        for i in 0..5 {
            let r = pine.read(i);
            assert_eq!(r.outcome.ret(), Some(0), "message {i}");
            if i == bad_idx as i64 {
                let out = String::from_utf8_lossy(r.outcome.output()).to_string();
                assert!(
                    out.contains("attacker@evil.example"),
                    "complete From must display: {out}"
                );
            }
        }
        assert_eq!(pine.compose().outcome.ret(), Some(0));
        assert_eq!(pine.move_message(0).outcome.ret(), Some(0));
    }

    #[test]
    fn attack_mail_arriving_live_is_survived_only_by_fo() {
        // Standard dies when the poisoned message's index entry renders.
        let mut pine = Pine::boot(Mode::Standard, Pine::standard_mailbox(3));
        let r = pine.deliver(&attack_from(40), b"pwn", b"x");
        assert!(!r.outcome.survived());
        // FO keeps going and subsequent mail still arrives.
        let mut pine = Pine::boot(Mode::FailureOblivious, Pine::standard_mailbox(3));
        let r = pine.deliver(&attack_from(40), b"pwn", b"x");
        assert!(r.outcome.survived());
        let r = pine.deliver(&workload::from_field(9), b"later", b"fine");
        assert_eq!(r.outcome.ret(), Some(0));
        assert_eq!(pine.read(3).outcome.ret(), Some(0));
    }

    #[test]
    fn read_and_compose_are_parse_bound_move_is_io_bound() {
        let mut std = Pine::boot(Mode::Standard, Pine::standard_mailbox(8));
        let mut fo = Pine::boot(Mode::FailureOblivious, Pine::standard_mailbox(8));
        let read = fo.read(3).cycles as f64 / std.read(3).cycles as f64;
        let compose = fo.compose().cycles as f64 / std.compose().cycles as f64;
        let mv = fo.move_message(2).cycles as f64 / std.move_message(2).cycles as f64;
        assert!(read > 2.0, "read slowdown {read}");
        assert!(compose > 2.0, "compose slowdown {compose}");
        assert!(mv < 2.0, "move slowdown {mv}");
        assert!(
            mv < read && mv < compose,
            "move must be the cheapest: {mv} vs {read}/{compose}"
        );
    }
}
