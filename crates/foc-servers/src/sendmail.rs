//! Sendmail 8.11.6 (§4.4): the `prescan` address-parsing overflow.
//!
//! `prescan` transfers an address into a fixed-size stack buffer using a
//! lookahead character, treating `\` specially. When the byte after a `\`
//! is `0xFF`, the `char`→`int` sign extension makes it equal to `-1` —
//! the parser's NOCHAR sentinel — which routes control around the block
//! that contains the buffer-space check, and a later *unchecked* store
//! writes the `\` into the buffer. "An attack message containing an
//! appropriately placed alternating sequence of -1 and `\` characters in
//! the address can therefore cause the prescan to write arbitrarily many
//! `\` characters beyond the end of the buffer."
//!
//! Per-mode behaviour (§4.4.2):
//!
//! * **Standard** — the out-of-bounds stores corrupt the call stack; the
//!   canary bytes are the attacker-controlled `\` pattern, modelling the
//!   documented possibility of injected-code execution.
//! * **Bounds Check** — unusable: every daemon wake-up commits a benign
//!   memory error (an off-by-one sentinel probe over the work queue), so
//!   the process exits before it ever serves a message.
//! * **Failure Oblivious** — the overflow is discarded, prescan returns,
//!   the address-too-long check fails, and standard error-handling
//!   rejects the address with a 501; subsequent commands succeed. The
//!   wake-up error is logged and otherwise harmless — the "steady stream
//!   of memory errors during normal execution" of §4.4.4.

use foc_compiler::ProgramImage;
use foc_memory::{Mode, TableKind};
use foc_vm::VmFault;

use crate::image::{self, ServerKind};
use crate::workload;
use crate::{BootSpec, Measured, Outcome, Process, ProcessCheckpoint};

/// MiniC source of the Sendmail model.
pub const SENDMAIL_SOURCE: &str = r#"
/* ---- Daemon work queue ------------------------------------------------ */

int workqueue[16];
int nqueued = 0;

/* Wake up and scan the queue. The loop bound walks one element past the
   end of the array — a benign read in practice, committed on every single
   wake-up. */
int sendmail_wakeup() {
    int i;
    int pending = 0;
    for (i = 0; i <= 16; i++) {
        if (workqueue[i] > 0) pending++;
    }
    io_wait(16);
    return pending;
}

/* ---- The prescan bug --------------------------------------------------- */

/* Parses an address into canonical form. Scratch integers are declared
   before the buffer so the overflow runs upward into the frame guard (the
   saved-return-address region), as on a real downward-growing stack. */
int parse_address(char *addr, char *canon, size_t canoncap) {
    int q = 0;
    int p = 0;
    int c;
    int lookahead = -1;              /* NOCHAR */
    char pvpbuf[48];
    while (1) {
        if (lookahead != -1) { c = lookahead; lookahead = -1; }
        else { c = addr[p++]; if (c == 0) break; }
        if (c == '\\') {
            lookahead = addr[p++];   /* char -> int: 0xFF becomes -1 */
            if (lookahead == 0) break;
            if (lookahead != -1) {
                if (q >= 44) break;  /* the buffer-space check lives here */
                pvpbuf[q++] = (char) c;
                continue;
            }
            /* NOCHAR path: the check above was skipped... */
            pvpbuf[q++] = '\\';      /* BUG: unchecked store */
            continue;
        }
        if (q >= 44) break;
        pvpbuf[q++] = (char) c;
    }
    if (q < 48) pvpbuf[q] = '\0';
    /* The caller's next step: reject addresses that are too long — the
       anticipated error case the failure-oblivious execution falls into. */
    if (q > 40) return -1;
    /* Canonicalise: three ruleset passes (sendmail's rewriting engine). */
    int pass;
    int j;
    char work[96];
    for (pass = 0; pass < 3; pass++) {
        j = 0;
        int i2 = 0;
        while (pvpbuf[i2] && j < 90) {
            char ch = pvpbuf[i2];
            if (pass == 0 && ch >= 'A' && ch <= 'Z') ch = ch + 32;
            if (pass == 1 && ch == '%') ch = '@';
            work[j++] = ch;
            i2++;
        }
        work[j] = '\0';
        int k2 = 0;
        while (work[k2]) { pvpbuf[k2] = work[k2]; k2++; }
        pvpbuf[k2] = '\0';
    }
    j = 0;
    while (pvpbuf[j] && (size_t) j + 1 < canoncap) {
        canon[j] = pvpbuf[j];
        j++;
    }
    canon[j] = '\0';
    return 0;
}

/* ---- SMTP transaction state ------------------------------------------- */

char sender[64];
char rcpt[8][64];
int nrcpt = 0;
int in_txn = 0;

struct dmsg {
    int used;
    char to[64];
    int len;
};
struct dmsg delivered[64];
int ndelivered = 0;
long total_delivered = 0;
long delivered_bytes = 0;

int sendmail_init() {
    int i;
    for (i = 0; i < 16; i++) workqueue[i] = 0;
    nqueued = 0;
    /* The daemon wakes up before serving anything — this is what makes
       the Bounds Check version unusable (§4.4.4). */
    sendmail_wakeup();
    return 0;
}

int smtp_mail_from(char *addr) {
    char canon[64];
    if (parse_address(addr, canon, 64) != 0) return 501;
    strncpy(sender, canon, 63);
    sender[63] = '\0';
    in_txn = 1;
    nrcpt = 0;
    io_wait(8);
    return 250;
}

int smtp_rcpt_to(char *addr) {
    if (!in_txn) return 503;
    if (nrcpt >= 8) return 452;
    char canon[64];
    if (parse_address(addr, canon, 64) != 0) return 501;
    strncpy(rcpt[nrcpt], canon, 63);
    rcpt[nrcpt][63] = '\0';
    nrcpt++;
    io_wait(8);
    return 250;
}

/* DATA: queue the message — header rewriting plus a per-byte copy into
   the queue file, then fsync-ish I/O. */
int smtp_data(char *body) {
    if (!in_txn) return 503;
    if (nrcpt == 0) return 554;
    size_t len = strlen(body);
    /* Received: header construction + body copy to the queue file. */
    char *qf = (char *) malloc(len + 256);
    char *p = qf;
    char *s = sender;
    while (*s) { *p++ = *s; s++; }
    *p++ = '\n';
    s = body;
    while (*s) {
        char ch = *s;
        /* dot-stuffing and bare-LF fixups */
        if (ch == '.' ) *p++ = '.';
        *p++ = ch;
        s++;
    }
    *p = '\0';
    io_wait((long) len / 2 + 32);
    free(qf);
    int r;
    for (r = 0; r < nrcpt; r++) {
        /* Keep a bounded ring of recent deliveries plus exact counters. */
        int slot = (int) (total_delivered % 64);
        delivered[slot].used = 1;
        strncpy(delivered[slot].to, rcpt[r], 63);
        delivered[slot].to[63] = '\0';
        delivered[slot].len = (int) len;
        if (ndelivered < 64) ndelivered++;
        total_delivered++;
        delivered_bytes += (long) len;
    }
    in_txn = 0;
    io_wait(16);
    return 250;
}

/* Outbound: send a queued message to a remote MTA. */
int smtp_send(char *to, char *body) {
    char canon[64];
    if (parse_address(to, canon, 64) != 0) return 501;
    size_t len = strlen(body);
    /* Envelope rewrite + transmission buffers. */
    char *xf = (char *) malloc(len + 128);
    char *p = xf;
    char *s = body;
    while (*s) { *p++ = *s; s++; }
    *p = '\0';
    io_wait((long) len / 2 + 64);
    free(xf);
    return 250;
}

long sendmail_delivered_count() {
    return total_delivered;
}

long sendmail_delivered_bytes() {
    return delivered_bytes;
}
"#;

/// A Sendmail process.
pub struct Sendmail {
    proc: Process,
    /// Outcome of initialization (the first wake-up).
    init_outcome: Outcome,
}

/// A frozen standard boot of the Sendmail daemon (see
/// [`crate::image::boot_checkpoint`]). Dead-at-init boots (the §4.4.4
/// Bounds Check daemon) checkpoint and restore faithfully dead.
pub struct SendmailCheckpoint {
    proc: ProcessCheckpoint,
    init_outcome: Outcome,
}

/// The §4.4 attack address: alternating `\` and `0xFF` bytes.
pub fn attack_address(pairs: usize) -> Vec<u8> {
    workload::sendmail_attack_address(pairs)
}

impl Sendmail {
    /// Legacy convenience over [`Sendmail::boot_spec`] with a default
    /// spec for `mode`; prefer constructing a [`BootSpec`] at the call
    /// site.
    pub fn boot(mode: Mode) -> Sendmail {
        Sendmail::boot_spec(&BootSpec::new(ServerKind::Sendmail, mode))
    }

    /// Legacy convenience over [`Sendmail::boot_spec`] for the mode ×
    /// table subset; prefer constructing a [`BootSpec`] at the call
    /// site.
    pub fn boot_table(mode: Mode, table: TableKind) -> Sendmail {
        Sendmail::boot_spec(&BootSpec::new(ServerKind::Sendmail, mode).with_table(table))
    }

    /// Legacy convenience over [`Sendmail::boot_image_spec`]; prefer
    /// constructing a [`BootSpec`] at the call site.
    pub fn boot_image(image: &ProgramImage, mode: Mode) -> Sendmail {
        Sendmail::boot_image_spec(image, &BootSpec::new(ServerKind::Sendmail, mode))
    }

    /// Legacy convenience over [`Sendmail::boot_image_spec`] for the
    /// mode × table subset; prefer constructing a [`BootSpec`] at the
    /// call site.
    pub fn boot_image_table(image: &ProgramImage, mode: Mode, table: TableKind) -> Sendmail {
        Sendmail::boot_image_spec(
            image,
            &BootSpec::new(ServerKind::Sendmail, mode).with_table(table),
        )
    }

    /// Boots the daemon from a full [`BootSpec`]: restored from the
    /// per-spec boot checkpoint, so supervised restarts of the daemon
    /// never re-interpret the wake-up path.
    pub fn boot_spec(spec: &BootSpec) -> Sendmail {
        let ckpt = image::boot_checkpoint(ServerKind::Sendmail, spec);
        let image::ServerCheckpoint::Sendmail(daemon) = ckpt.as_ref() else {
            unreachable!("Sendmail cache slot holds a Sendmail checkpoint");
        };
        Sendmail::restore(daemon)
    }

    /// Freezes this daemon's state.
    pub fn checkpoint(&self) -> SendmailCheckpoint {
        SendmailCheckpoint {
            proc: self.proc.checkpoint(),
            init_outcome: self.init_outcome.clone(),
        }
    }

    /// Materialises a daemon in exactly the captured state.
    pub fn restore(ckpt: &SendmailCheckpoint) -> Sendmail {
        Sendmail {
            proc: Process::restore(&ckpt.proc),
            init_outcome: ckpt.init_outcome.clone(),
        }
    }

    /// Boots the daemon from an explicit image and a full [`BootSpec`].
    pub fn boot_image_spec(image: &ProgramImage, spec: &BootSpec) -> Sendmail {
        let mut proc = Process::boot_spec(image, spec);
        let init_outcome = proc.request("sendmail_init", &[]).outcome;
        Sendmail { proc, init_outcome }
    }

    /// How daemon initialization went.
    pub fn init_outcome(&self) -> &Outcome {
        &self.init_outcome
    }

    /// Whether the daemon is serving.
    pub fn usable(&self) -> bool {
        self.init_outcome.survived() && !self.proc.is_dead()
    }

    /// The underlying process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable process access.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    /// Periodic daemon wake-up (commits the benign memory error).
    pub fn wakeup(&mut self) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        self.proc.request("sendmail_wakeup", &[])
    }

    fn call1(&mut self, func: &str, arg: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let p = self.proc.guest_str(arg);
        let r = self.proc.request(func, &[p.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r
    }

    /// `MAIL FROM:` — the vulnerable parse runs on the address.
    pub fn mail_from(&mut self, addr: &[u8]) -> Measured {
        self.call1("smtp_mail_from", addr)
    }

    /// `RCPT TO:`.
    pub fn rcpt_to(&mut self, addr: &[u8]) -> Measured {
        self.call1("smtp_rcpt_to", addr)
    }

    /// `DATA` with the given body.
    pub fn data(&mut self, body: &[u8]) -> Measured {
        self.call1("smtp_data", body)
    }

    /// Receives a complete message (Figure 4 Recv requests).
    pub fn receive(&mut self, from: &[u8], to: &[u8], body: &[u8]) -> Measured {
        let a = self.mail_from(from);
        if !a.outcome.survived() {
            return a;
        }
        let b = self.rcpt_to(to);
        if !b.outcome.survived() {
            return b;
        }
        let c = self.data(body);
        Measured {
            cycles: a.cycles + b.cycles + c.cycles,
            outcome: c.outcome,
        }
    }

    /// Sends a message outbound (Figure 4 Send requests).
    pub fn send(&mut self, to: &[u8], body: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let t = self.proc.guest_str(to);
        let b = self.proc.guest_str(body);
        let r = self.proc.request("smtp_send", &[t.arg(), b.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(t);
            self.proc.free_guest_str(b);
        }
        r
    }

    /// Messages delivered so far.
    pub fn delivered_count(&mut self) -> Option<i64> {
        if self.proc.is_dead() {
            return None;
        }
        self.proc
            .request("sendmail_delivered_count", &[])
            .outcome
            .ret()
    }
}

fn dead(proc: &Process) -> Measured {
    Measured {
        outcome: Outcome::Crashed(
            proc.machine()
                .dead_reason()
                .cloned()
                .unwrap_or(VmFault::MachineDead),
        ),
        cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_memory::MemFault;

    #[test]
    fn legitimate_mail_flows_in_standard_and_fo() {
        for mode in [Mode::Standard, Mode::FailureOblivious] {
            let mut sm = Sendmail::boot(mode);
            assert!(sm.usable(), "mode {mode:?}");
            let r = sm.receive(
                &workload::sendmail_address(1),
                &workload::sendmail_address(2),
                b"hi!!",
            );
            assert_eq!(r.outcome.ret(), Some(250), "mode {mode:?}");
            assert_eq!(sm.delivered_count(), Some(1));
            let r = sm.send(&workload::sendmail_address(3), b"outbound body");
            assert_eq!(r.outcome.ret(), Some(250));
        }
    }

    #[test]
    fn bounds_check_daemon_is_unusable() {
        // §4.4.4: the wake-up error "apparently completely disables the
        // Bounds Check version" — it dies during initialization.
        let sm = Sendmail::boot(Mode::BoundsCheck);
        assert!(!sm.usable());
        let Outcome::Crashed(f) = sm.init_outcome() else {
            panic!("expected init crash");
        };
        assert!(f.is_memory_error(), "got {f}");
    }

    #[test]
    fn fo_daemon_logs_steady_stream_of_wakeup_errors() {
        let mut sm = Sendmail::boot(Mode::FailureOblivious);
        assert!(sm.usable());
        let before = sm.process().machine().space().error_log().total();
        for _ in 0..10 {
            let r = sm.wakeup();
            assert!(r.outcome.survived());
        }
        let after = sm.process().machine().space().error_log().total();
        assert!(
            after >= before + 10,
            "each wake-up must log at least one error ({before} -> {after})"
        );
    }

    #[test]
    fn attack_smashes_standard_stack_with_attacker_bytes() {
        let mut sm = Sendmail::boot(Mode::Standard);
        // Enough pairs to carry the unchecked stores across the scratch
        // locals above the buffer and into the frame guard.
        let r = sm.mail_from(&attack_address(400));
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Standard sendmail must crash, got {:?}", r.outcome);
        };
        match f {
            VmFault::Mem(MemFault::StackSmashed { found, .. }) => {
                // The canary was overwritten with the attacker's '\' bytes:
                // the modelled control-flow hijack.
                assert_eq!(*found, 0x5C5C_5C5C_5C5C_5C5C, "attacker bytes in canary");
            }
            other => panic!("expected stack smash, got {other}"),
        }
    }

    #[test]
    fn attack_terminates_bounds_check_worker() {
        // Boot dies at wake-up already; to exercise the prescan path give
        // the worker a life without wake-up by testing the parse directly.
        let mut proc = Process::boot_source(SENDMAIL_SOURCE, Mode::BoundsCheck, 80_000_000);
        let addr = proc.guest_str(&attack_address(120));
        let canon = proc.guest_str(&[0u8; 63]);
        let r = proc.request("parse_address", &[addr.arg(), canon.arg(), 64]);
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("expected memory error");
        };
        assert!(f.is_memory_error());
    }

    #[test]
    fn fo_rejects_attack_as_address_too_long_and_continues() {
        let mut sm = Sendmail::boot(Mode::FailureOblivious);
        let r = sm.mail_from(&attack_address(120));
        // 501: the anticipated "address too long" rejection (§4.4.2).
        assert_eq!(r.outcome.ret(), Some(501));
        assert!(sm.process().machine().space().error_log().total_writes() > 0);
        // Subsequent commands process correctly.
        let r = sm.receive(
            &workload::sendmail_address(5),
            &workload::sendmail_address(6),
            b"after the attack",
        );
        assert_eq!(r.outcome.ret(), Some(250));
        assert_eq!(sm.delivered_count(), Some(1));
    }

    #[test]
    fn fo_survives_interleaved_attacks_and_mail() {
        let mut sm = Sendmail::boot(Mode::FailureOblivious);
        let mut delivered = 0;
        for i in 0..30 {
            if i % 3 == 0 {
                let r = sm.mail_from(&attack_address(60 + i));
                assert_eq!(r.outcome.ret(), Some(501), "attack {i}");
            } else {
                let r = sm.receive(
                    &workload::sendmail_address(i as u64),
                    &workload::sendmail_address(1000 + i as u64),
                    &workload::lorem(200, i as u64),
                );
                assert_eq!(r.outcome.ret(), Some(250), "mail {i}");
                delivered += 1;
            }
            sm.wakeup();
        }
        assert_eq!(sm.delivered_count(), Some(delivered));
    }

    #[test]
    fn malformed_but_short_addresses_are_rejected_cleanly() {
        for mode in [Mode::Standard, Mode::FailureOblivious] {
            let mut sm = Sendmail::boot(mode);
            // An over-long ordinary address: rejected by the same check.
            let long: Vec<u8> = std::iter::repeat_n(b'a', 60).collect();
            let r = sm.mail_from(&long);
            assert_eq!(r.outcome.ret(), Some(501), "mode {mode:?}");
        }
    }

    #[test]
    fn figure4_shape_slowdown_flat_across_sizes() {
        let mut std = Sendmail::boot(Mode::Standard);
        let mut fo = Sendmail::boot(Mode::FailureOblivious);
        let small = workload::lorem(4, 1);
        let large = workload::lorem(4096, 2);
        let from = workload::sendmail_address(1);
        let to = workload::sendmail_address(2);
        let rs_s = std.receive(&from, &to, &small).cycles as f64;
        let rf_s = fo.receive(&from, &to, &small).cycles as f64;
        let rs_l = std.receive(&from, &to, &large).cycles as f64;
        let rf_l = fo.receive(&from, &to, &large).cycles as f64;
        let slow_small = rf_s / rs_s;
        let slow_large = rf_l / rs_l;
        assert!(slow_small > 1.5, "small slowdown {slow_small}");
        assert!(slow_large > 1.5, "large slowdown {slow_large}");
        // The paper's flat profile: both sizes in the same band.
        assert!(
            (slow_small / slow_large) < 2.2 && (slow_large / slow_small) < 2.2,
            "sizes should slow down comparably: {slow_small} vs {slow_large}"
        );
    }
}
