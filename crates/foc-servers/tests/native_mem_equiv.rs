//! The memory-spanning block executor's invisibility contract: a
//! `LocalsBlock` that crosses the memory boundary — checked guest
//! loads and stores resolved in-block through the placement probe
//! (`GLoad`/`GStore`/`GIdxLoad`/`GIdxStore`) — must be observationally
//! byte-identical to one-dispatch-at-a-time interpretation on every
//! surface: call results, crash faults, `RunStats` (so in particular
//! the `charge − spent` refund taken at a mid-block deopt), the full
//! `SpaceStats` counters, and the full memory-error log with its fault
//! pcs and sequence numbers.
//!
//! `native_equiv.rs` proves the server-layer contract; this battery
//! aims straight at the heap seams with direct-machine sources built
//! to fault *inside* a block (earlier block ops already retired, the
//! probe misses, the access deopts at its pre-baked `FaultAt` seam),
//! crossed with both page-lookup layers, alloc/free churn that
//! reshapes the object table under the probe, manufactured-value
//! strategies, and a fuel sweep that probes the whole-region
//! pre-charge gate around the faulting block — plus the server-layer
//! attack battery re-run under the paged lookup layer, which the
//! in-block probe shares with the interpreter.

use proptest::prelude::*;

use foc_compiler::{compile_image_tier, ExecTier};
use foc_memory::{LookupLayer, MemoryErrorRecord, Mode, SpaceStats, ValueSequence};
use foc_servers::sweep::{drive_input, INPUT_LIBRARY};
use foc_servers::BootSpec;
use foc_vm::{Machine, MachineConfig, RunStats, VmFault};

/// An in-bounds copy loop: the inner `dst[i] = src[i]` lowers to a
/// pointer-arithmetic + checked-access pair that the native tier
/// groups into memory-spanning blocks and fuses into
/// `GIdxLoad`/`GIdxStore`, every access resolving on the probe's fast
/// path (no deopt anywhere).
const COPY_SOURCE: &str = "long spin(long n) {\n\
     long src[32];\n\
     long dst[32];\n\
     long i;\n\
     long j;\n\
     long t = 0;\n\
     for (i = 0; i < 32; i++) src[i] = i * 7;\n\
     for (j = 0; j < n; j++) {\n\
         for (i = 0; i < 32; i++) dst[i] = src[i];\n\
         t = t + dst[31];\n\
     }\n\
     return t;\n\
 }";

/// A copy loop that walks past both 8-element arrays when `n > 8`: the
/// first out-of-bounds iteration faults *mid-block* — the block's
/// pointer arithmetic has already retired in registers when the access
/// probe misses — so the native tier must deopt at the access's seam,
/// refund the unexecuted remainder of the region's pre-charge, and
/// produce the identical log record (address, width, fault pc,
/// sequence number) or crash fault as the baseline interpreter.
const OVERRUN_SOURCE: &str = "long smash(long n) {\n\
     long src[8];\n\
     long dst[8];\n\
     long i;\n\
     long t = 0;\n\
     for (i = 0; i < 8; i++) src[i] = i + 1;\n\
     for (i = 0; i < n; i++) {\n\
         dst[i] = src[i] + 1;\n\
         t = t + dst[i];\n\
     }\n\
     return t;\n\
 }";

/// Every observable surface of one machine run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    result: Result<i64, VmFault>,
    stats: RunStats,
    space: SpaceStats,
    log_total: u64,
    log_dropped: u64,
    records: Vec<MemoryErrorRecord>,
}

/// Boots `source` at `tier`, applies `churn` rounds of host-side
/// allocate/free traffic (reshaping the object table and page map the
/// in-block probe resolves against), calls `entry(arg)` once, and
/// snapshots everything observable.
fn observe(
    source: &str,
    entry: &str,
    arg: i64,
    tier: ExecTier,
    config: MachineConfig,
    churn: u32,
) -> Observed {
    let image = compile_image_tier(source, tier).expect("source builds");
    let mut m = Machine::load(image, config).expect("load");
    let mut held = Vec::new();
    for round in 0..churn {
        let addr = m.alloc_cstring(&[b'x'; 11]).expect("churn allocation fits");
        // Free every other allocation immediately so the table sees
        // interleaved insert/remove traffic, not just growth.
        if round % 2 == 0 {
            m.free_guest(addr).expect("churn free");
        } else {
            held.push(addr);
        }
    }
    let result = m.call(entry, &[arg]);
    let log = m.space().error_log();
    Observed {
        result,
        stats: m.stats(),
        space: *m.space().stats(),
        log_total: log.total(),
        log_dropped: log.dropped(),
        records: log.records().to_vec(),
    }
}

/// Asserts all three tiers of (`source`, `config`) agree on every
/// observable surface, returning the shared observation.
fn assert_mem_blind(
    source: &str,
    entry: &str,
    arg: i64,
    config: &MachineConfig,
    churn: u32,
) -> Observed {
    let baseline = observe(
        source,
        entry,
        arg,
        ExecTier::Baseline,
        config.clone(),
        churn,
    );
    for tier in [ExecTier::Super, ExecTier::Native] {
        let tiered = observe(source, entry, arg, tier, config.clone(), churn);
        assert_eq!(
            baseline, tiered,
            "{entry}({arg}) under {tier:?} must match baseline ({config:?}, churn {churn})"
        );
    }
    baseline
}

/// The in-bounds copy loop is byte-identical across tiers, modes, and
/// both lookup layers — and the two layers agree with *each other*,
/// pinning that the in-block probe drives the substrate counters
/// exactly as interpreted accesses do on the pure fast path.
#[test]
fn in_bounds_copy_loop_is_tier_and_lookup_blind() {
    for mode in Mode::ALL {
        let mut per_layer = Vec::new();
        for lookup in LookupLayer::ALL {
            let config = MachineConfig::with_mode(mode)
                .with_lookup(lookup)
                .with_fuel(1_000_000);
            let seen = assert_mem_blind(COPY_SOURCE, "spin", 6, &config, 0);
            assert_eq!(
                seen.result,
                Ok(31 * 7 * 6),
                "the copy loop is violation-free and must complete under {mode:?}/{lookup:?}"
            );
            assert_eq!(seen.log_total, 0, "no violations on the in-bounds loop");
            per_layer.push(seen);
        }
        assert_eq!(
            per_layer[0], per_layer[1],
            "lookup layers must be mutually invisible under {mode:?}"
        );
    }
}

/// Mid-block access faults: the overrun loop crosses its arrays' ends,
/// so the fused in-block access deopts. Every mode's full observable
/// surface — including the fault pc inside the log records and the
/// refunded `RunStats` — must match the baseline interpreter, under
/// both lookup layers.
#[test]
fn mid_block_access_faults_are_tier_blind() {
    for mode in Mode::ALL {
        for lookup in LookupLayer::ALL {
            let config = MachineConfig::with_mode(mode)
                .with_lookup(lookup)
                .with_fuel(1_000_000);
            let seen = assert_mem_blind(OVERRUN_SOURCE, "smash", 12, &config, 0);
            if mode == Mode::FailureOblivious {
                assert!(
                    seen.result.is_ok(),
                    "failure-oblivious execution must ride through the overrun"
                );
                assert!(
                    seen.log_total > 0,
                    "the overrun must be observable in the error log"
                );
                let record = &seen.records[0];
                assert!(
                    record.pc > 0,
                    "log records must carry the interpreter's fault pc"
                );
            }
        }
    }
}

/// Manufactured-value strategies decide what a deopted out-of-bounds
/// read returns — and therefore which branches the guest takes after
/// the fault. The in-block miss path draws from the same sequence at
/// the same point as the interpreter, so every strategy must agree.
#[test]
fn manufactured_values_at_deopt_seams_are_tier_blind() {
    let sequences = [
        ValueSequence::Zero,
        ValueSequence::Constant(0x41),
        ValueSequence::Cycling { wrap: 3 },
        ValueSequence::Cycling { wrap: 257 },
    ];
    for sequence in sequences {
        let config = MachineConfig::with_mode(Mode::FailureOblivious)
            .with_sequence(sequence)
            .with_fuel(1_000_000);
        assert_mem_blind(OVERRUN_SOURCE, "smash", 20, &config, 0);
    }
}

/// The server-layer attack battery under the *paged* lookup layer:
/// all five servers × all five modes × the full input library, native
/// vs baseline. `native_equiv.rs` covers the table layer; this leg
/// pins that heap-spanning blocks inside real server images resolve
/// through the page map identically too.
#[test]
fn all_servers_all_modes_attack_library_under_paged_lookup() {
    let mut attacks = 0;
    for input in INPUT_LIBRARY {
        for mode in Mode::ALL {
            let spec = BootSpec::new(input.kind, mode).with_lookup(LookupLayer::Paged);
            let baseline = drive_input(input, &spec.with_tier(ExecTier::Baseline));
            let native = drive_input(input, &spec.with_tier(ExecTier::Native));
            assert_eq!(
                baseline,
                native,
                "{}/{} under paged lookup: native must match baseline",
                input.kind.name(),
                input.name
            );
            if input.attack && mode == Mode::FailureOblivious {
                attacks += 1;
                assert!(
                    baseline.violations > 0 || baseline.fault.is_some(),
                    "{}/{}: an attack input must be observable",
                    input.kind.name(),
                    input.name
                );
            }
        }
    }
    assert!(attacks >= 5, "the library must cover every server's attack");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuel sweep over the faulting copy loop: a native region is only
    /// entered when remaining fuel covers its whole pre-charge, and a
    /// mid-block deopt refunds `charge − spent` — so a drifted refund
    /// (or a drifted entry decision) moves *where* tight budgets fuel
    /// out. Every fuel point from boot-time exhaustion through full
    /// completion must agree with baseline on the entire observable
    /// surface.
    #[test]
    fn fuel_sweep_pins_identical_faults_and_refunds(
        fuel in 0u64..6_000,
        n in 0i64..24,
        mode_index in 0usize..Mode::ALL.len(),
    ) {
        let config = MachineConfig::with_mode(Mode::ALL[mode_index]).with_fuel(fuel);
        let baseline = observe(OVERRUN_SOURCE, "smash", n, ExecTier::Baseline, config.clone(), 0);
        let native = observe(OVERRUN_SOURCE, "smash", n, ExecTier::Native, config, 0);
        prop_assert_eq!(baseline, native);
    }

    /// Alloc/free churn reshapes the object table and page map the
    /// in-block probe resolves against (splay rotations, page-hint
    /// shifts, freed-unit tombstones). Random churn volumes crossed
    /// with random overrun depths and manufactured-value seeds must
    /// leave the native tier observationally invisible.
    #[test]
    fn alloc_free_churn_is_probe_blind(
        churn in 0u32..96,
        n in 0i64..24,
        wrap in 2u64..600,
        lookup_index in 0usize..LookupLayer::ALL.len(),
    ) {
        let config = MachineConfig::with_mode(Mode::FailureOblivious)
            .with_lookup(LookupLayer::ALL[lookup_index])
            .with_sequence(ValueSequence::Cycling { wrap })
            .with_fuel(1_000_000);
        let baseline = observe(OVERRUN_SOURCE, "smash", n, ExecTier::Baseline, config.clone(), churn);
        let native = observe(OVERRUN_SOURCE, "smash", n, ExecTier::Native, config, churn);
        prop_assert_eq!(baseline, native);
    }
}
