//! Regression battery for the checkpoint cache's eviction policy.
//!
//! The cache used to clear *everything* when a 65th distinct spec
//! appeared — so a mode sweep's churn of one-shot cells would dump the
//! five hot standard boots the farm and supervisor restore from on
//! every restart, re-paying five full guest boots at the worst moment.
//! The policy is now per-entry LRU; this test pins the property that
//! actually matters: arbitrary churn of cold one-shot cells can never
//! displace a standard boot that stays in use.
//!
//! Runs as its own integration-test process on purpose: the cache is
//! process-global, and this battery needs to own its fill state.

use std::sync::Arc;

use foc_memory::Mode;
use foc_servers::image::{boot_checkpoint, checkpoint_cache_len};
use foc_servers::{BootSpec, ServerKind};

/// The cache cap (mirrors `image::CHECKPOINT_CACHE_CAP`; the assert
/// below fails loudly if the two drift).
const CAP: usize = 64;

#[test]
fn churn_of_one_shot_cells_cannot_evict_hot_standard_boots() {
    // The five standard-boot cells, exactly as the farm builds them.
    let standard: Vec<(ServerKind, BootSpec)> = ServerKind::ALL
        .iter()
        .map(|&kind| (kind, BootSpec::new(kind, Mode::FailureOblivious)))
        .collect();
    let hot: Vec<Arc<_>> = standard
        .iter()
        .map(|(kind, spec)| boot_checkpoint(*kind, spec))
        .collect();

    // Churn: 200 distinct one-shot Apache cells (a sweep axis walking
    // the fuel budget), interleaved with periodic standard-cell touches
    // the way a live farm keeps restoring while a sweep runs. 200 is
    // > 3× the cap, so the whole cache turns over several times.
    for i in 0..200u64 {
        let one_shot =
            BootSpec::new(ServerKind::Apache, Mode::FailureOblivious).with_fuel(1_000_000 + i);
        let _ = boot_checkpoint(ServerKind::Apache, &one_shot);
        if i % 8 == 0 {
            for (kind, spec) in &standard {
                let again = boot_checkpoint(*kind, spec);
                assert!(
                    Arc::ptr_eq(&again, &hot[kind.index()]),
                    "{} standard boot was evicted mid-churn",
                    kind.name()
                );
            }
        }
        assert!(
            checkpoint_cache_len() <= CAP,
            "cache exceeded its cap: {} entries",
            checkpoint_cache_len()
        );
    }

    // After the full churn, every standard cell is still the *same*
    // interned checkpoint — not a rebuilt equal one.
    for ((kind, spec), old) in standard.iter().zip(&hot) {
        let now = boot_checkpoint(*kind, spec);
        assert!(
            Arc::ptr_eq(old, &now),
            "{} standard boot was evicted by one-shot churn",
            kind.name()
        );
    }
}
