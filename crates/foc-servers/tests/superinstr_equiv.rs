//! The superinstruction tier's end-to-end invisibility contract, at the
//! server layer: for every observable surface a client or operator has —
//! step transcripts, intercepted-violation counts, crash faults,
//! post-supervision usability, the full space counters, and the full
//! memory-error log — driving a server under the fused tier must be
//! byte-identical to driving it under the baseline tier.
//!
//! The VM layer already proves instruction-level parity (fuel, instr,
//! cycle accounting per opcode; `foc-vm`'s tier-parity battery). This
//! battery closes the remaining gap: real boot images, checkpoint
//! restore, supervision restarts, and the §4/§5.1 attack library, across
//! all five servers × all five modes, plus a property sweep over
//! manufactured-value seeds and fuel limits that pins identical
//! fuel-out points.

use proptest::prelude::*;

use foc_compiler::ExecTier;
use foc_memory::{Mode, ValueSequence};
use foc_servers::sweep::{drive_input, Driven, SweepInput, INPUT_LIBRARY, TIGHT_FUEL};
use foc_servers::BootSpec;

/// Drives `input` under both execution tiers of the same spec and
/// asserts every observable surface agrees, returning the (shared)
/// observation for callers that want to assert more.
fn assert_tier_blind(input: &SweepInput, spec: BootSpec) -> Driven {
    let baseline = drive_input(input, &spec.with_tier(ExecTier::Baseline));
    let fused = drive_input(input, &spec.with_tier(ExecTier::Super));
    assert_eq!(
        baseline,
        fused,
        "{}/{} under {:?}: tiers must be observationally identical",
        input.kind.name(),
        input.name,
        spec
    );
    baseline
}

/// The headline battery: all five servers × all five modes × the full
/// input library (benign sessions and the attack inputs), at each
/// server's standard fuel budget. The attack inputs are the ones that
/// exercise the fused opcodes' cold deopt seams — a violation inside a
/// fused memory access must produce the same log record, at the same
/// sequence number, with the same manufactured value, as the unfused
/// interpretation.
#[test]
fn all_servers_all_modes_attack_library() {
    let mut attacks = 0;
    for input in INPUT_LIBRARY {
        for mode in Mode::ALL {
            let driven = assert_tier_blind(input, BootSpec::new(input.kind, mode));
            if input.attack && mode == Mode::FailureOblivious {
                attacks += 1;
                assert!(
                    driven.violations > 0 || driven.fault.is_some(),
                    "{}/{}: an attack input must be observable",
                    input.kind.name(),
                    input.name
                );
            }
        }
    }
    assert!(attacks >= 5, "the library must cover every server's attack");
}

/// Manufactured-value strategies change *which* values flow out of
/// invalid reads — and therefore which branches the guest takes after a
/// violation. The tier must be blind to all of them, including the
/// degenerate constant that keeps `strlen`-style loops running (the
/// tight budget bounds those non-terminating scans; the interesting
/// observable is then *where* they fuel out, which must also agree).
#[test]
fn manufactured_value_strategies_are_tier_blind() {
    let sequences = [
        ValueSequence::Zero,
        ValueSequence::Constant(0x41),
        ValueSequence::Cycling { wrap: 3 },
        ValueSequence::Cycling { wrap: 257 },
    ];
    for input in INPUT_LIBRARY.iter().filter(|i| i.attack) {
        for sequence in sequences {
            assert_tier_blind(
                input,
                BootSpec::new(input.kind, Mode::FailureOblivious)
                    .with_sequence(sequence)
                    .with_fuel(TIGHT_FUEL),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (input, mode, manufactured-value seed, fuel limit) points:
    /// both tiers must agree on everything — in particular on *where*
    /// tight budgets fuel out. The fused opcodes charge their whole
    /// pattern's fuel through a deopt seam when the budget cannot cover
    /// it, so a drifted fuel-out point (a script step completing under
    /// one tier and `FuelExhausted`-crashing under the other) is exactly
    /// the bug class this property hunts. Fuel spans boot-time
    /// exhaustion (well under any server's boot cost) through budgets
    /// that let most scripts finish.
    #[test]
    fn random_seed_and_fuel_points_are_tier_blind(
        index in 0usize..INPUT_LIBRARY.len(),
        mode_index in 0usize..Mode::ALL.len(),
        wrap in 2u64..600,
        fuel in 0u64..400_000,
    ) {
        let input = &INPUT_LIBRARY[index];
        let spec = BootSpec::new(input.kind, Mode::ALL[mode_index])
            .with_sequence(ValueSequence::Cycling { wrap })
            .with_fuel(fuel);
        let baseline = drive_input(input, &spec.with_tier(ExecTier::Baseline));
        let fused = drive_input(input, &spec.with_tier(ExecTier::Super));
        prop_assert_eq!(baseline, fused);
    }
}
