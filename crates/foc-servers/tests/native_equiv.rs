//! The native tier's end-to-end invisibility contract, at the server
//! layer: for every observable surface a client or operator has — step
//! transcripts, intercepted-violation counts, crash faults,
//! post-supervision usability, the full space counters, and the full
//! memory-error log — driving a server under AOT-lowered region
//! execution must be byte-identical to driving it under the baseline
//! interpreter *and* the superinstruction tier.
//!
//! The VM layer already proves instruction-level parity (fuel, instr,
//! cycle accounting per opcode; `foc-vm`'s tier-parity battery and the
//! independent-referee accounting audit). This battery closes the
//! remaining gap: real boot images, boot-checkpoint restore (every
//! `drive_input` boot restores a frozen per-spec snapshot, so the
//! native artifact must ride through `Checkpoint` capture/restore),
//! and the §4/§5.1 attack library, across all five servers × all five
//! modes, plus a property sweep over manufactured-value seeds and fuel
//! limits that pins identical fuel-out points.

use proptest::prelude::*;

use foc_compiler::{compile_image_tier, ExecTier};
use foc_memory::{Mode, ValueSequence};
use foc_servers::sweep::{drive_input, Driven, SweepInput, INPUT_LIBRARY, TIGHT_FUEL};
use foc_servers::BootSpec;
use foc_vm::{Checkpoint, Machine, MachineConfig};

/// Drives `input` under all three execution tiers of the same spec and
/// asserts every observable surface agrees, returning the (shared)
/// observation for callers that want to assert more.
fn assert_native_blind(input: &SweepInput, spec: BootSpec) -> Driven {
    let baseline = drive_input(input, &spec.with_tier(ExecTier::Baseline));
    for tier in [ExecTier::Super, ExecTier::Native] {
        let tiered = drive_input(input, &spec.with_tier(tier));
        assert_eq!(
            baseline,
            tiered,
            "{}/{} under {:?}: {:?} must be observationally identical to baseline",
            input.kind.name(),
            input.name,
            spec,
            tier
        );
    }
    baseline
}

/// The headline battery: all five servers × all five modes × the full
/// input library (benign sessions and the attack inputs), at each
/// server's standard fuel budget. The attack inputs are the ones that
/// exercise the native regions' cold fault seams — a violation inside a
/// lowered memory access must refund the unexecuted components and
/// produce the same log record, at the same sequence number, with the
/// same manufactured value, as one-dispatch-at-a-time interpretation.
#[test]
fn all_servers_all_modes_attack_library() {
    let mut attacks = 0;
    for input in INPUT_LIBRARY {
        for mode in Mode::ALL {
            let driven = assert_native_blind(input, BootSpec::new(input.kind, mode));
            if input.attack && mode == Mode::FailureOblivious {
                attacks += 1;
                assert!(
                    driven.violations > 0 || driven.fault.is_some(),
                    "{}/{}: an attack input must be observable",
                    input.kind.name(),
                    input.name
                );
            }
        }
    }
    assert!(attacks >= 5, "the library must cover every server's attack");
}

/// Manufactured-value strategies change *which* values flow out of
/// invalid reads — and therefore which branches the guest takes after a
/// violation. The native tier must be blind to all of them under the
/// tight budget, where its whole-region pre-charge gate is constantly
/// probed by impending fuel exhaustion.
#[test]
fn manufactured_value_strategies_are_native_blind() {
    let sequences = [
        ValueSequence::Zero,
        ValueSequence::Constant(0x41),
        ValueSequence::Cycling { wrap: 3 },
        ValueSequence::Cycling { wrap: 257 },
    ];
    for input in INPUT_LIBRARY.iter().filter(|i| i.attack) {
        for sequence in sequences {
            assert_native_blind(
                input,
                BootSpec::new(input.kind, Mode::FailureOblivious)
                    .with_sequence(sequence)
                    .with_fuel(TIGHT_FUEL),
            );
        }
    }
}

/// A mid-run VM checkpoint of a native-tier machine must restore with
/// the AOT artifact intact, and the interrupted run must finish exactly
/// as an uninterrupted baseline run does — stats, space counters, and
/// results alike. (Server boots restore frozen snapshots on every
/// `drive_input`, so the batteries above already soak boot-time
/// restore; this pins the artifact's survival explicitly.)
#[test]
fn native_artifact_survives_checkpoint_restore() {
    let src = "long spin(long n) { int xs[2]; long i; long acc = 0; \
               for (i = 0; i < n; i++) acc += xs[5]; return acc; }";
    let config = MachineConfig::with_mode(Mode::FailureOblivious).with_fuel(1_000_000);

    let image = compile_image_tier(src, ExecTier::Native).expect("compile");
    let mut native = Machine::load(image, config.clone()).expect("load");
    native.call("spin", &[4]).expect("warm-up call");
    let ckpt = Checkpoint::capture(&native);

    let mut restored = ckpt.restore();
    assert!(
        restored.image().native().is_some(),
        "the AOT artifact must ride through capture/restore"
    );

    let mut reference = Machine::load(
        compile_image_tier(src, ExecTier::Baseline).expect("compile"),
        config,
    )
    .expect("load");
    reference.call("spin", &[4]).expect("warm-up call");
    assert_eq!(
        restored.call("spin", &[6]).expect("restored call"),
        reference.call("spin", &[6]).expect("reference call"),
    );
    assert_eq!(restored.stats(), reference.stats());
    assert_eq!(restored.space().stats(), reference.space().stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (input, mode, manufactured-value seed, fuel limit) points:
    /// all three tiers must agree on everything — in particular on
    /// *where* tight budgets fuel out. A native region is only entered
    /// when remaining fuel covers its whole charge, so a drifted
    /// fuel-out point (a script step completing under one tier and
    /// `FuelExhausted`-crashing under another) is exactly the bug class
    /// this property hunts. Fuel spans boot-time exhaustion (well under
    /// any server's boot cost) through budgets that let most scripts
    /// finish.
    #[test]
    fn random_seed_and_fuel_points_are_native_blind(
        index in 0usize..INPUT_LIBRARY.len(),
        mode_index in 0usize..Mode::ALL.len(),
        wrap in 2u64..600,
        fuel in 0u64..400_000,
    ) {
        let input = &INPUT_LIBRARY[index];
        let spec = BootSpec::new(input.kind, Mode::ALL[mode_index])
            .with_sequence(ValueSequence::Cycling { wrap })
            .with_fuel(fuel);
        let baseline = drive_input(input, &spec.with_tier(ExecTier::Baseline));
        let native = drive_input(input, &spec.with_tier(ExecTier::Native));
        prop_assert_eq!(baseline, native);
    }
}
