//! The connection edge's end-to-end invisibility contract: serving a
//! farm over the simulated socket layer must be byte-identical to the
//! in-process fast path on every observable surface — farm reports
//! (completion counts, latency histograms, violation totals, restart
//! accounting) and per-input transcripts (return codes, output bytes,
//! faults, error logs).
//!
//! The module's unit tests prove per-request `Measured` equality; this
//! battery closes the remaining gap: whole farms with supervision and
//! attack traffic, the full sweep input library across all five modes,
//! and a property sweep over connection-pool shapes, adversarial
//! transport scenarios, and workload seeds. The edge is a *transport*
//! axis — slow-loris drips, mid-request disconnects, and accept-queue
//! floods may reorder bytes, never decisions.

use proptest::prelude::*;

use foc_memory::Mode;
use foc_servers::conn::{Edge, Scenario, SocketEdge};
use foc_servers::farm::{run_farm, FarmConfig};
use foc_servers::sweep::{drive_input_via, INPUT_LIBRARY};
use foc_servers::{BootSpec, ServerKind};

/// A farm small enough to run fifty times in a test, big enough to see
/// attacks, crashes, supervision restarts, and multi-server stealing.
fn small_farm(kind: ServerKind, mode: Mode, seed: u64) -> FarmConfig {
    let mut config = FarmConfig::new(kind, mode).with_threads(2).with_slice(7);
    config.servers = 2;
    config.requests_per_server = 20;
    config.seed = seed;
    config
}

/// Runs `config` over both edges and asserts the reports equal.
fn assert_edge_blind(config: FarmConfig, socket: SocketEdge) {
    let in_process = run_farm(&config.clone().with_edge(Edge::InProcess));
    let wired = run_farm(&config.with_edge(Edge::Socket(socket)));
    assert_eq!(
        in_process, wired,
        "the connection edge must not change the farm report"
    );
}

/// The headline battery: all five servers × all five modes, clean
/// socket transport. Attack traffic is on (the default 1-in-8), so the
/// comparison covers crashes, restarts, and refused connections on
/// dead servers, not just the happy path.
#[test]
fn farm_reports_are_edge_invariant_across_servers_and_modes() {
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            assert_edge_blind(small_farm(kind, mode, 0xF0C_E001), SocketEdge::default());
        }
    }
}

/// Adversarial transport: a 1-byte slow-loris drip, mid-request
/// disconnects with retransmission, and an accept-queue flood each
/// leave the report identical to the in-process run.
#[test]
fn farm_reports_survive_adversarial_transport() {
    let scenarios = [
        SocketEdge {
            scenario: Scenario::SlowLoris { chunk: 1 },
            ..SocketEdge::default()
        },
        SocketEdge {
            scenario: Scenario::Disconnect { every: 2 },
            ..SocketEdge::default()
        },
        SocketEdge {
            backlog: 3,
            flood: 9,
            ..SocketEdge::default()
        },
    ];
    for socket in scenarios {
        assert_edge_blind(
            small_farm(ServerKind::Pine, Mode::FailureOblivious, 0xF0C_E002),
            socket.clone(),
        );
        assert_edge_blind(
            small_farm(ServerKind::Sendmail, Mode::Standard, 0xF0C_E003),
            socket,
        );
    }
}

/// The full sweep library × all five modes: every observable surface of
/// every scripted input ([`foc_servers::sweep::Driven`]: transcript
/// hash, violation counts, fault, recovery, space counters, the whole
/// memory-error log) agrees across the edge.
#[test]
fn sweep_transcripts_are_edge_invariant() {
    let socket = Edge::Socket(SocketEdge::default());
    for input in INPUT_LIBRARY {
        for mode in Mode::ALL {
            let spec = BootSpec::new(input.kind, mode);
            let direct = drive_input_via(input, &spec, &Edge::InProcess);
            let wired = drive_input_via(input, &spec, &socket);
            assert_eq!(
                direct,
                wired,
                "{}/{} under {mode:?}: the edge must be transcript-invisible",
                input.kind.name(),
                input.name
            );
        }
    }
}

/// Attack scripts over abusive transport: the inputs that crash and
/// restart servers, carried over drips and disconnects, still match.
#[test]
fn attack_transcripts_survive_adversarial_transport() {
    let edges = [
        Edge::Socket(SocketEdge {
            scenario: Scenario::SlowLoris { chunk: 2 },
            ..SocketEdge::default()
        }),
        Edge::Socket(SocketEdge {
            scenario: Scenario::Disconnect { every: 1 },
            ..SocketEdge::default()
        }),
    ];
    for input in INPUT_LIBRARY.iter().filter(|i| i.attack) {
        for edge in &edges {
            for mode in [Mode::FailureOblivious, Mode::Standard] {
                let spec = BootSpec::new(input.kind, mode);
                let direct = drive_input_via(input, &spec, &Edge::InProcess);
                let wired = drive_input_via(input, &spec, edge);
                assert_eq!(
                    direct,
                    wired,
                    "{}/{} under {mode:?} over {}: transport abuse leaked",
                    input.kind.name(),
                    input.name,
                    edge.label()
                );
            }
        }
    }
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        Just(Scenario::Clean),
        (1usize..5).prop_map(|chunk| Scenario::SlowLoris { chunk }),
        (1u32..4).prop_map(|every| Scenario::Disconnect { every }),
    ]
}

fn socket_strategy() -> impl Strategy<Value = SocketEdge> {
    (1usize..6, 1usize..8, 0usize..10, scenario_strategy()).prop_map(
        |(connections, backlog, flood, scenario)| SocketEdge {
            connections,
            backlog,
            flood,
            scenario,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Report invariance holds for *any* pool shape, backlog, flood
    /// size, transport scenario, and workload seed — the edge-blindness
    /// is structural (closed-loop generation + wire-authoritative
    /// serving), not tuned to the default configuration.
    #[test]
    fn farm_reports_are_edge_invariant_under_arbitrary_transport(
        socket in socket_strategy(),
        seed in any::<u64>(),
        kind_index in 0usize..5,
        mode_index in 0usize..5,
    ) {
        let kind = ServerKind::ALL[kind_index];
        let mode = Mode::ALL[mode_index];
        let mut config = small_farm(kind, mode, seed);
        config.requests_per_server = 12;
        assert_edge_blind(config, socket);
    }
}
