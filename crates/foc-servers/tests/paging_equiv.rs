//! The page-map lookup layer's end-to-end invisibility contract, at
//! the server layer: for every observable surface a client or operator
//! has — step transcripts, intercepted-violation counts, crash faults,
//! post-supervision usability, the full space counters, and the full
//! memory-error log — driving a server under [`LookupLayer::Paged`]
//! must be byte-identical to driving it under [`LookupLayer::Table`].
//!
//! The space layer already proves observational identity on mixed
//! direct traffic (`foc-memory`'s differential tests). This battery
//! closes the remaining gap: real boot images, the per-spec checkpoint
//! cache (whose frozen snapshots carry a page map), supervision
//! restarts, and the §4/§5.1 attack library, across all five servers ×
//! all five modes — the attack inputs are the ones whose wild accesses
//! land on guard pages, so log equality proves guard-page hits classify
//! exactly like table misses. A property sweep over manufactured-value
//! seeds, fuel limits, and alloc/free churn scripts pins the page map
//! against stale entries across slot reuse.

use proptest::prelude::*;

use foc_memory::{AccessCtx, AccessSize, LookupLayer, MemConfig, MemorySpace, Mode, ValueSequence};
use foc_servers::sweep::{drive_input, Driven, SweepInput, INPUT_LIBRARY, TIGHT_FUEL};
use foc_servers::BootSpec;

/// Drives `input` under both lookup layers of the same spec and
/// asserts every observable surface agrees, returning the (shared)
/// observation for callers that want to assert more.
fn assert_layer_blind(input: &SweepInput, spec: BootSpec) -> Driven {
    let table = drive_input(input, &spec.with_lookup(LookupLayer::Table));
    let paged = drive_input(input, &spec.with_lookup(LookupLayer::Paged));
    assert_eq!(
        table,
        paged,
        "{}/{}: lookup layers must be observationally identical",
        input.kind.name(),
        input.name,
    );
    table
}

/// The headline battery: all five servers × all five modes × the full
/// input library (benign sessions and the attack inputs), at each
/// server's standard fuel budget. The attack accesses are exactly the
/// ones that miss every unit — under the paged layer they hit guard
/// pages (or shared-page fallbacks), and the byte-identical error log
/// proves each one classified and manufactured identically to the
/// table search.
#[test]
fn all_servers_all_modes_attack_library() {
    let mut attacks = 0;
    for input in INPUT_LIBRARY {
        for mode in Mode::ALL {
            let driven = assert_layer_blind(input, BootSpec::new(input.kind, mode));
            if input.attack && mode == Mode::FailureOblivious {
                attacks += 1;
                assert!(
                    driven.violations > 0 || driven.fault.is_some(),
                    "{}/{}: an attack input must be observable",
                    input.kind.name(),
                    input.name
                );
            }
        }
    }
    assert!(attacks >= 5, "the library must cover every server's attack");
}

/// Manufactured-value strategies change *which* values flow out of
/// invalid reads — and therefore which branches the guest takes after
/// a violation. The lookup layer must be blind to all of them,
/// including the degenerate constant that keeps `strlen`-style loops
/// running (the tight budget bounds those non-terminating scans; the
/// interesting observable is then *where* they fuel out, which must
/// also agree).
#[test]
fn manufactured_value_strategies_are_layer_blind() {
    let sequences = [
        ValueSequence::Zero,
        ValueSequence::Constant(0x41),
        ValueSequence::Cycling { wrap: 3 },
        ValueSequence::Cycling { wrap: 257 },
    ];
    for input in INPUT_LIBRARY.iter().filter(|i| i.attack) {
        for sequence in sequences {
            assert_layer_blind(
                input,
                BootSpec::new(input.kind, Mode::FailureOblivious)
                    .with_sequence(sequence)
                    .with_fuel(TIGHT_FUEL),
            );
        }
    }
}

/// A paged spec's *second* boot restores the frozen checkpoint its
/// first boot populated the per-spec cache with — so driving the same
/// attack input twice proves the checkpoint round-trips the page map:
/// a snapshot restored with a stale or missing map would misclassify
/// the attack's accesses and diverge from both the first run and the
/// table layer.
#[test]
fn checkpoint_restore_round_trips_the_page_map() {
    for input in INPUT_LIBRARY.iter().filter(|i| i.attack) {
        let spec =
            BootSpec::new(input.kind, Mode::FailureOblivious).with_lookup(LookupLayer::Paged);
        let first = drive_input(input, &spec);
        let restored = drive_input(input, &spec);
        assert_eq!(
            first,
            restored,
            "{}/{}: a checkpoint-restored boot must replay identically",
            input.kind.name(),
            input.name,
        );
        let table = drive_input(input, &spec.with_lookup(LookupLayer::Table));
        assert_eq!(
            restored,
            table,
            "{}/{}: the restored page map must still match the table layer",
            input.kind.name(),
            input.name,
        );
    }
}

/// One deterministic step of the churn script: a linear-congruential
/// step is all the randomness the differential needs (both layers see
/// the same script; proptest varies the seed).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Runs a seeded alloc/free/access churn script on one space and
/// returns every observable it produced, encoded as plain words so a
/// divergence points at the exact step.
fn run_churn_script(space: &mut MemorySpace, seed: u64, steps: usize) -> Vec<u64> {
    let ctx = AccessCtx::default();
    let mut state = seed;
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut freed: Vec<u64> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..steps {
        match lcg(&mut state) % 5 {
            // Allocate: small sizes mixed with multi-page buffers, so
            // slot reuse crosses page-exclusivity classes.
            0 => {
                let size = if lcg(&mut state).is_multiple_of(4) {
                    4096 + lcg(&mut state) % 12288
                } else {
                    8 + lcg(&mut state) % 120
                };
                match space.malloc(size) {
                    Ok(p) => {
                        live.push((p, size));
                        out.push(p);
                    }
                    Err(_) => out.push(u64::MAX),
                }
            }
            // Free a random live unit: its pages must uncover, and any
            // later access through the dangling pointer must classify
            // as a violation, never resolve via a stale map entry.
            1 if !live.is_empty() => {
                let at = (lcg(&mut state) as usize) % live.len();
                let (p, _) = live.swap_remove(at);
                let ok = space.free(p, ctx).is_ok();
                freed.push(p);
                out.push(ok as u64);
            }
            // In-bounds and straddling loads on a live unit.
            2 if !live.is_empty() => {
                let at = (lcg(&mut state) as usize) % live.len();
                let (p, size) = live[at];
                let off = lcg(&mut state) % (size + 16);
                match space.load(p + off, AccessSize::B1, ctx) {
                    Ok(r) => {
                        out.push(r.value);
                        out.push(r.violation as u64);
                    }
                    Err(_) => out.push(u64::MAX - 1),
                }
            }
            // Stores through live and dangling pointers alike.
            3 => {
                let target = if !freed.is_empty() && lcg(&mut state).is_multiple_of(2) {
                    let at = (lcg(&mut state) as usize) % freed.len();
                    freed[at] + lcg(&mut state) % 64
                } else if !live.is_empty() {
                    let at = (lcg(&mut state) as usize) % live.len();
                    let (p, size) = live[at];
                    p + lcg(&mut state) % (size + 8)
                } else {
                    0x4000_0000
                };
                match space.store(target, AccessSize::B8, lcg(&mut state), ctx) {
                    Ok(w) => out.push(w.violation as u64),
                    Err(_) => out.push(u64::MAX - 2),
                }
            }
            // Dangling reads: the slot-reuse trap. After enough churn a
            // freed pointer's slot (and often its very page) belongs to
            // a newer unit; a stale page-map entry would resolve the
            // old address silently.
            _ if !freed.is_empty() => {
                let at = (lcg(&mut state) as usize) % freed.len();
                match space.load(freed[at], AccessSize::B4, ctx) {
                    Ok(r) => {
                        out.push(r.value);
                        out.push(r.violation as u64);
                    }
                    Err(_) => out.push(u64::MAX - 3),
                }
            }
            _ => out.push(0),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (input, mode, manufactured-value seed, fuel limit)
    /// points: both layers must agree on everything — in particular on
    /// *where* tight budgets fuel out, since a lookup layer that
    /// changed any access's outcome would shift every later
    /// manufactured value and fuel charge. The fuel floor sits just
    /// above `pine_init`'s cost (Pine's boot asserts init survival);
    /// heavier servers still exhaust at boot under the low end.
    #[test]
    fn random_seed_and_fuel_points_are_layer_blind(
        index in 0usize..INPUT_LIBRARY.len(),
        mode_index in 0usize..Mode::ALL.len(),
        wrap in 2u64..600,
        fuel in 5_000u64..400_000,
    ) {
        let input = &INPUT_LIBRARY[index];
        let spec = BootSpec::new(input.kind, Mode::ALL[mode_index])
            .with_sequence(ValueSequence::Cycling { wrap })
            .with_fuel(fuel);
        let table = drive_input(input, &spec.with_lookup(LookupLayer::Table));
        let paged = drive_input(input, &spec.with_lookup(LookupLayer::Paged));
        prop_assert_eq!(table, paged);
    }

    /// Seeded alloc/free churn scripts — heavy slot and page reuse with
    /// dangling accesses interleaved — must be observably identical
    /// under both layers, step by step and in the final counters and
    /// error log. This is the stale-entry hunt: a page-map entry
    /// surviving its unit's death would resolve a dangling access the
    /// table layer rejects.
    #[test]
    fn alloc_free_churn_leaves_no_stale_page_entries(
        seed in 0u64..u64::MAX,
        mode_index in 0usize..Mode::ALL.len(),
    ) {
        let mode = Mode::ALL[mode_index];
        let mut table_space = MemorySpace::new(
            MemConfig::with_mode(mode).with_lookup(LookupLayer::Table),
        );
        let mut paged_space = MemorySpace::new(
            MemConfig::with_mode(mode).with_lookup(LookupLayer::Paged),
        );
        let table = run_churn_script(&mut table_space, seed, 300);
        let paged = run_churn_script(&mut paged_space, seed, 300);
        prop_assert_eq!(table, paged, "seed {} under {:?}", seed, mode);
        prop_assert_eq!(table_space.stats(), paged_space.stats());
        prop_assert_eq!(
            table_space.error_log().records(),
            paged_space.error_log().records()
        );
    }
}
