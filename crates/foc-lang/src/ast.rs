//! Abstract syntax tree produced by the parser.
//!
//! The AST mirrors source syntax; types, name resolution, and implicit
//! conversions are resolved later by [`crate::sema`] into the
//! [`crate::hir`] representation consumed by the compiler.

use crate::token::Pos;

/// A parsed type as written in source (before struct resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `void`.
    Void,
    /// Integer type with explicit signedness/width (e.g. `unsigned char`).
    Int {
        /// Width in bytes (1, 2, 4, or 8).
        width: u8,
        /// Signedness.
        signed: bool,
    },
    /// `struct Name`.
    Struct(String),
    /// Pointer to another type.
    Ptr(Box<TypeExpr>),
}

/// Binary operators (value-level; pointer arithmetic is resolved in sema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`.
    Neg,
    /// `~x`.
    BitNot,
    /// `!x`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Pos),
    /// String literal.
    StrLit(Vec<u8>, Pos),
    /// Identifier reference.
    Ident(String, Pos),
    /// `lhs op rhs`.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// `op operand`.
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        pos: Pos,
    },
    /// `*ptr`.
    Deref(Box<Expr>, Pos),
    /// `&lvalue`.
    AddrOf(Box<Expr>, Pos),
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        pos: Pos,
    },
    /// `base.field` (`arrow` selects `base->field`).
    Member {
        base: Box<Expr>,
        field: String,
        arrow: bool,
        pos: Pos,
    },
    /// Function call by name.
    Call {
        callee: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// `lvalue = value`.
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// `lvalue op= value`.
    OpAssign {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// `++x`, `--x`, `x++`, `x--`.
    IncDec {
        target: Box<Expr>,
        inc: bool,
        prefix: bool,
        pos: Pos,
    },
    /// `cond ? then : else`.
    Conditional {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
        pos: Pos,
    },
    /// `(type) expr`.
    Cast {
        ty: TypeExpr,
        expr: Box<Expr>,
        pos: Pos,
    },
    /// `sizeof(type)` or `sizeof expr`.
    SizeofType(TypeExpr, Pos),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>, Pos),
    /// `a, b` — evaluates both, yields the right operand.
    Comma {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::IntLit(_, p)
            | Expr::StrLit(_, p)
            | Expr::Ident(_, p)
            | Expr::Deref(_, p)
            | Expr::AddrOf(_, p)
            | Expr::SizeofType(_, p)
            | Expr::SizeofExpr(_, p) => *p,
            Expr::Binary { pos, .. }
            | Expr::Unary { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Member { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Assign { pos, .. }
            | Expr::OpAssign { pos, .. }
            | Expr::IncDec { pos, .. }
            | Expr::Conditional { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Comma { pos, .. } => *pos,
        }
    }
}

/// A local declaration's initialiser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Initializer {
    /// `= expr`.
    Expr(Expr),
    /// `= { e, e, ... }` for arrays.
    List(Vec<Expr>),
}

/// One declarator within a declaration (`int *p, q[4]` has two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Full type after applying pointer/array syntax.
    pub ty: TypeExpr,
    /// Array dimension when declared as `name[N]` (outermost first);
    /// an empty vec means not an array.
    pub array_dims: Vec<u64>,
    /// Optional initialiser.
    pub init: Option<Initializer>,
    /// Position of the name.
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local variable declaration(s).
    Decl(Vec<Declarator>),
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `if (cond) then else els`.
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While { cond: Expr, body: Box<Stmt> },
    /// `do body while (cond);`.
    DoWhile { body: Box<Stmt>, cond: Expr },
    /// `for (init; cond; step) body`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { case ...: ... }`.
    Switch { scrutinee: Expr, body: Vec<Stmt> },
    /// `case value:` (must appear inside a switch body).
    Case(i64, Pos),
    /// `default:`.
    Default(Pos),
    /// `break;`.
    Break(Pos),
    /// `continue;`.
    Continue(Pos),
    /// `return expr?;`.
    Return(Option<Expr>, Pos),
    /// `label:`.
    Label(String, Pos),
    /// `goto label;`.
    Goto(String, Pos),
    /// `;`.
    Empty,
}

/// A struct field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Array dimension, if `name[N]`.
    pub array_dims: Vec<u64>,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDecl>,
    /// Position of the tag.
    pub pos: Pos,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position of the name.
    pub pos: Pos,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Struct definition.
    Struct(StructDecl),
    /// Global variable declaration(s).
    Global(Vec<Declarator>),
    /// Function definition.
    Func(FuncDecl),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TranslationUnit {
    /// Items in source order.
    pub items: Vec<Item>,
}
