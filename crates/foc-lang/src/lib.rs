//! MiniC: the guest language front end.
//!
//! The paper applies failure-oblivious computing to C programs through a
//! safe-C compiler. Reproducing that offline requires a C-like language we
//! control end to end; MiniC is that language — a substantial C subset
//! chosen so the five servers of §4 (and the paper's Figure 1 code) can be
//! written essentially verbatim:
//!
//! * types: `void`, `char`, `unsigned char`, `short`, `int`, `long` (and
//!   unsigned variants), `size_t`, pointers, arrays, `struct`s;
//! * expressions: the full C operator set including assignment and
//!   compound assignment, `++`/`--`, the comma operator, the ternary
//!   operator, short-circuit `&&`/`||`, casts, and `sizeof`;
//! * statements: `if`/`else`, `while`, `do`/`while`, `for`, `switch`,
//!   `break`/`continue`, `return`, and `goto`/labels (Figure 1's
//!   `goto bail` pattern);
//! * declarations: globals with initialisers, string literals, struct
//!   definitions, and functions.
//!
//! Deliberate omissions (not needed by any server in the study): the
//! preprocessor, function pointers, `float`/`double`, bit-fields, unions,
//! struct-by-value parameters and returns, and variadic user functions
//! (`printf` is a runtime builtin).
//!
//! `char` is signed and widening is sign-extending — this is load-bearing:
//! the Sendmail vulnerability (§4.4) depends on a `char` comparing equal
//! to `-1` after promotion.

pub mod ast;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod types;

pub use lexer::{LexError, Lexer};
pub use parser::{parse, ParseError};
pub use sema::{analyze, SemaError};
pub use types::{CType, IntWidth};

/// Parses and type-checks a MiniC translation unit.
pub fn frontend(source: &str) -> Result<hir::Program, FrontendError> {
    let ast = parse(source).map_err(FrontendError::Parse)?;
    analyze(&ast).map_err(FrontendError::Sema)
}

/// Any front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexing/parsing failure.
    Parse(ParseError),
    /// Type checking failure.
    Sema(SemaError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Sema(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}
