//! Recursive-descent parser for MiniC.

use std::fmt;

use crate::ast::*;
use crate::lexer::{LexError, Lexer};
use crate::token::{Keyword, Pos, Tok, Token};

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.pos)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parses a MiniC translation unit.
pub fn parse(source: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, at: 0 }.parse_unit()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].kind
    }

    fn peek2(&self) -> &Tok {
        let i = (self.at + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            pos: self.pos(),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), ParseError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Ident(s) => Ok((s, pos)),
            other => Err(ParseError {
                message: format!("expected identifier, found {other}"),
                pos,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Types.
    // ------------------------------------------------------------------

    /// Whether the current token can begin a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Struct
                    | Keyword::SizeT
                    | Keyword::Static
                    | Keyword::Const
            )
        )
    }

    /// Parses a type specifier (without declarator pointers).
    fn parse_base_type(&mut self) -> Result<TypeExpr, ParseError> {
        // Skip storage/qualifier keywords.
        while matches!(self.peek(), Tok::Kw(Keyword::Static | Keyword::Const)) {
            self.bump();
        }
        let mut signed: Option<bool> = None;
        let mut base: Option<TypeExpr> = None;
        let mut long_count = 0;
        loop {
            match self.peek() {
                Tok::Kw(Keyword::Signed) => {
                    self.bump();
                    signed = Some(true);
                }
                Tok::Kw(Keyword::Unsigned) => {
                    self.bump();
                    signed = Some(false);
                }
                Tok::Kw(Keyword::Const) => {
                    self.bump();
                }
                Tok::Kw(Keyword::Void) => {
                    self.bump();
                    base = Some(TypeExpr::Void);
                }
                Tok::Kw(Keyword::Char) => {
                    self.bump();
                    base = Some(TypeExpr::Int {
                        width: 1,
                        signed: true,
                    });
                }
                Tok::Kw(Keyword::Short) => {
                    self.bump();
                    base = Some(TypeExpr::Int {
                        width: 2,
                        signed: true,
                    });
                    // Allow `short int`.
                    if matches!(self.peek(), Tok::Kw(Keyword::Int)) {
                        self.bump();
                    }
                }
                Tok::Kw(Keyword::Int) => {
                    self.bump();
                    if base.is_none() {
                        base = Some(TypeExpr::Int {
                            width: 4,
                            signed: true,
                        });
                    }
                }
                Tok::Kw(Keyword::Long) => {
                    self.bump();
                    long_count += 1;
                    base = Some(TypeExpr::Int {
                        width: 8,
                        signed: true,
                    });
                    if long_count > 2 {
                        return Err(self.err("too many `long`s"));
                    }
                }
                Tok::Kw(Keyword::SizeT) => {
                    self.bump();
                    base = Some(TypeExpr::Int {
                        width: 8,
                        signed: false,
                    });
                }
                Tok::Kw(Keyword::Struct) => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    base = Some(TypeExpr::Struct(name));
                }
                _ => break,
            }
        }
        let mut ty = match base {
            Some(t) => t,
            None if signed.is_some() => TypeExpr::Int {
                width: 4,
                signed: true,
            },
            None => return Err(self.err("expected type")),
        };
        if let (TypeExpr::Int { width, .. }, Some(s)) = (&ty, signed) {
            ty = TypeExpr::Int {
                width: *width,
                signed: s,
            };
        }
        Ok(ty)
    }

    /// Applies `*` pointer declarator syntax.
    fn parse_pointers(&mut self, mut ty: TypeExpr) -> TypeExpr {
        while self.eat(&Tok::Star) {
            // `const` may qualify the pointer; ignored.
            while matches!(self.peek(), Tok::Kw(Keyword::Const)) {
                self.bump();
            }
            ty = TypeExpr::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses a complete abstract type (for casts and sizeof).
    fn parse_type(&mut self) -> Result<TypeExpr, ParseError> {
        let base = self.parse_base_type()?;
        Ok(self.parse_pointers(base))
    }

    /// Parses array dimensions after a declarator name.
    fn parse_array_dims(&mut self) -> Result<Vec<u64>, ParseError> {
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            if self.eat(&Tok::RBracket) {
                // `[]`: size inferred from the initialiser.
                dims.push(0);
                continue;
            }
            let e = self.parse_conditional()?;
            let v = const_eval(&e)
                .ok_or_else(|| self.err("array dimension must be a constant expression"))?;
            if v <= 0 {
                return Err(self.err("array dimension must be positive"));
            }
            dims.push(v as u64);
            self.expect(Tok::RBracket)?;
        }
        Ok(dims)
    }

    // ------------------------------------------------------------------
    // Top level.
    // ------------------------------------------------------------------

    fn parse_unit(mut self) -> Result<TranslationUnit, ParseError> {
        let mut items = Vec::new();
        while self.peek() != &Tok::Eof {
            items.push(self.parse_item()?);
        }
        Ok(TranslationUnit { items })
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        // `struct Name { ... };` is a struct definition; `struct Name x;`
        // is a global. Disambiguate by looking past the tag.
        if matches!(self.peek(), Tok::Kw(Keyword::Struct))
            && matches!(self.peek2(), Tok::Ident(_))
            && self.tokens.get(self.at + 2).map(|t| &t.kind) == Some(&Tok::LBrace)
        {
            return Ok(Item::Struct(self.parse_struct()?));
        }
        if !self.at_type() {
            return Err(self.err(format!(
                "expected declaration or function, found {}",
                self.peek()
            )));
        }
        let base = self.parse_base_type()?;
        let ty = self.parse_pointers(base.clone());
        let (name, pos) = self.expect_ident()?;
        if self.peek() == &Tok::LParen {
            return Ok(Item::Func(self.parse_func(ty, name, pos)?));
        }
        // Global declarator list.
        let decls = self.parse_declarator_list(base, ty, name, pos)?;
        Ok(Item::Global(decls))
    }

    fn parse_struct(&mut self) -> Result<StructDecl, ParseError> {
        self.expect(Tok::Kw(Keyword::Struct))?;
        let (name, pos) = self.expect_ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let base = self.parse_base_type()?;
            loop {
                let fty = self.parse_pointers(base.clone());
                let (fname, _) = self.expect_ident()?;
                let dims = self.parse_array_dims()?;
                fields.push(FieldDecl {
                    name: fname,
                    ty: fty,
                    array_dims: dims,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
        }
        self.expect(Tok::Semi)?;
        Ok(StructDecl { name, fields, pos })
    }

    fn parse_func(
        &mut self,
        ret: TypeExpr,
        name: String,
        pos: Pos,
    ) -> Result<FuncDecl, ParseError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            // `(void)` means no parameters.
            if matches!(self.peek(), Tok::Kw(Keyword::Void)) && self.peek2() == &Tok::RParen {
                self.bump();
                self.expect(Tok::RParen)?;
            } else {
                loop {
                    let base = self.parse_base_type()?;
                    let ty = self.parse_pointers(base);
                    let (pname, _) = self.expect_ident()?;
                    // Array parameters decay to pointers.
                    let dims = self.parse_array_dims()?;
                    let ty = if dims.is_empty() {
                        ty
                    } else {
                        TypeExpr::Ptr(Box::new(ty))
                    };
                    params.push(Param { name: pname, ty });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
        }
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            body.push(self.parse_stmt()?);
        }
        Ok(FuncDecl {
            name,
            ret,
            params,
            body,
            pos,
        })
    }

    /// Parses the rest of a declarator list, having already consumed the
    /// base type, pointers, and the first name.
    fn parse_declarator_list(
        &mut self,
        base: TypeExpr,
        first_ty: TypeExpr,
        first_name: String,
        first_pos: Pos,
    ) -> Result<Vec<Declarator>, ParseError> {
        let mut decls = Vec::new();
        let dims = self.parse_array_dims()?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        decls.push(Declarator {
            name: first_name,
            ty: first_ty,
            array_dims: dims,
            init,
            pos: first_pos,
        });
        while self.eat(&Tok::Comma) {
            let ty = self.parse_pointers(base.clone());
            let (name, pos) = self.expect_ident()?;
            let dims = self.parse_array_dims()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                ty,
                array_dims: dims,
                init,
                pos,
            });
        }
        self.expect(Tok::Semi)?;
        Ok(decls)
    }

    fn parse_initializer(&mut self) -> Result<Initializer, ParseError> {
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            if !self.eat(&Tok::RBrace) {
                loop {
                    items.push(self.parse_assign()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    // Allow a trailing comma.
                    if self.peek() == &Tok::RBrace {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
            }
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.parse_assign()?))
        }
    }

    // ------------------------------------------------------------------
    // Statements.
    // ------------------------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    stmts.push(self.parse_stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tok::Kw(Keyword::If) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat(&Tok::Kw(Keyword::Else)) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::Kw(Keyword::While) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                self.expect(Tok::Kw(Keyword::While))?;
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::Kw(Keyword::For) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.parse_decl_stmt()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Keyword::Switch) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrutinee = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut body = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    body.push(self.parse_stmt()?);
                }
                Ok(Stmt::Switch { scrutinee, body })
            }
            Tok::Kw(Keyword::Case) => {
                self.bump();
                let e = self.parse_conditional()?;
                let v = const_eval(&e).ok_or_else(|| self.err("case label must be constant"))?;
                self.expect(Tok::Colon)?;
                Ok(Stmt::Case(v, pos))
            }
            Tok::Kw(Keyword::Default) => {
                self.bump();
                self.expect(Tok::Colon)?;
                Ok(Stmt::Default(pos))
            }
            Tok::Kw(Keyword::Break) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Kw(Keyword::Continue) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::Kw(Keyword::Return) => {
                self.bump();
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None, pos))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), pos))
                }
            }
            Tok::Kw(Keyword::Goto) => {
                self.bump();
                let (label, _) = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Goto(label, pos))
            }
            // `ident:` is a label.
            Tok::Ident(_) if self.peek2() == &Tok::Colon => {
                let (name, _) = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                Ok(Stmt::Label(name, pos))
            }
            _ if self.at_type() => self.parse_decl_stmt(),
            _ => {
                let e = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let base = self.parse_base_type()?;
        let ty = self.parse_pointers(base.clone());
        let (name, pos) = self.expect_ident()?;
        let decls = self.parse_declarator_list(base, ty, name, pos)?;
        Ok(Stmt::Decl(decls))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing).
    // ------------------------------------------------------------------

    /// Full expression, including the comma operator.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_assign()?;
        while self.peek() == &Tok::Comma {
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_assign()?;
            e = Expr::Comma {
                lhs: Box::new(e),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(e)
    }

    /// Assignment expression (no top-level comma).
    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_conditional()?;
        let pos = self.pos();
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::And),
            Tok::PipeAssign => Some(BinOp::Or),
            Tok::CaretAssign => Some(BinOp::Xor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?; // right associative
        Ok(match op {
            None => Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            },
            Some(op) => Expr::OpAssign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            },
        })
    }

    fn parse_conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.peek() == &Tok::Question {
            let pos = self.pos();
            self.bump();
            let then = self.parse_expr()?;
            self.expect(Tok::Colon)?;
            let els = self.parse_assign()?;
            Ok(Expr::Conditional {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
                pos,
            })
        } else {
            Ok(cond)
        }
    }

    fn binop_of(tok: &Tok) -> Option<(BinOp, u8)> {
        Some(match tok {
            Tok::OrOr => (BinOp::LogicalOr, 1),
            Tok::AndAnd => (BinOp::LogicalAnd, 2),
            Tok::Pipe => (BinOp::Or, 3),
            Tok::Caret => (BinOp::Xor, 4),
            Tok::Amp => (BinOp::And, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = Self::binop_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(e),
                    pos,
                })
            }
            Tok::Plus => {
                self.bump();
                self.parse_unary()
            }
            Tok::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    operand: Box::new(e),
                    pos,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(e),
                    pos,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Deref(Box::new(e), pos))
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::AddrOf(Box::new(e), pos))
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let inc = self.peek() == &Tok::PlusPlus;
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::IncDec {
                    target: Box::new(e),
                    inc,
                    prefix: true,
                    pos,
                })
            }
            Tok::Kw(Keyword::Sizeof) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    // Could be `sizeof(type)` or `sizeof(expr)`.
                    let save = self.at;
                    self.bump();
                    if self.at_type() {
                        let ty = self.parse_type()?;
                        self.expect(Tok::RParen)?;
                        return Ok(Expr::SizeofType(ty, pos));
                    }
                    self.at = save;
                }
                let e = self.parse_unary()?;
                Ok(Expr::SizeofExpr(Box::new(e), pos))
            }
            // Cast: `(type) unary`.
            Tok::LParen => {
                let save = self.at;
                self.bump();
                if self.at_type() {
                    let ty = self.parse_type()?;
                    self.expect(Tok::RParen)?;
                    let e = self.parse_unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(e),
                        pos,
                    });
                }
                self.at = save;
                self.parse_postfix()
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            let pos = self.pos();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                        pos,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::Member {
                        base: Box::new(e),
                        field,
                        arrow: false,
                        pos,
                    };
                }
                Tok::Arrow => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::Member {
                        base: Box::new(e),
                        field,
                        arrow: true,
                        pos,
                    };
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let inc = self.peek() == &Tok::PlusPlus;
                    self.bump();
                    e = Expr::IncDec {
                        target: Box::new(e),
                        inc,
                        prefix: false,
                        pos,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::IntLit(v, pos)),
            Tok::StrLit(bytes) => Ok(Expr::StrLit(bytes, pos)),
            Tok::Ident(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_assign()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        pos,
                    })
                } else {
                    Ok(Expr::Ident(name, pos))
                }
            }
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError {
                message: format!("expected expression, found {other}"),
                pos,
            }),
        }
    }
}

/// Constant folding for array dimensions and case labels.
fn const_eval(e: &Expr) -> Option<i64> {
    Some(match e {
        Expr::IntLit(v, _) => *v,
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => const_eval(operand)?.wrapping_neg(),
        Expr::Unary {
            op: UnOp::BitNot,
            operand,
            ..
        } => !const_eval(operand)?,
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => l.checked_div(r)?,
                BinOp::Rem => l.checked_rem(r)?,
                BinOp::Shl => l.wrapping_shl(r as u32),
                BinOp::Shr => l.wrapping_shr(r as u32),
                BinOp::And => l & r,
                BinOp::Or => l | r,
                BinOp::Xor => l ^ r,
                _ => return None,
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        match parse(src) {
            Ok(u) => u,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parses_minimal_function() {
        let u = parse_ok("int main() { return 0; }");
        assert_eq!(u.items.len(), 1);
        let Item::Func(f) = &u.items[0] else {
            panic!("expected function");
        };
        assert_eq!(f.name, "main");
        assert_eq!(f.params.len(), 0);
    }

    #[test]
    fn parses_void_parameter_list() {
        let u = parse_ok("int f(void) { return 1; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(f.params.is_empty());
    }

    #[test]
    fn parses_pointer_and_array_declarations() {
        let u = parse_ok("char *p; int xs[10]; char grid[3][4]; unsigned long n = 7;");
        assert_eq!(u.items.len(), 4);
        let Item::Global(g) = &u.items[1] else {
            panic!()
        };
        assert_eq!(g[0].array_dims, vec![10]);
        let Item::Global(g) = &u.items[2] else {
            panic!()
        };
        assert_eq!(g[0].array_dims, vec![3, 4]);
    }

    #[test]
    fn parses_struct_definition_and_use() {
        let u = parse_ok(
            "struct point { int x; int y; char tag[8]; };\n\
             struct point origin;\n\
             int get_x(struct point *p) { return p->x; }",
        );
        assert_eq!(u.items.len(), 3);
        let Item::Struct(s) = &u.items[0] else {
            panic!()
        };
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[2].array_dims, vec![8]);
    }

    #[test]
    fn parses_control_flow() {
        parse_ok(
            "int f(int n) {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < n; i++) { acc += i; }\n\
               while (acc > 100) acc /= 2;\n\
               do { acc--; } while (acc % 3);\n\
               if (acc) return acc; else return -1;\n\
             }",
        );
    }

    #[test]
    fn parses_goto_and_labels() {
        let u = parse_ok(
            "int f() {\n\
               int x = 0;\n\
             retry:\n\
               x++;\n\
               if (x < 3) goto retry;\n\
               return x;\n\
             }",
        );
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Label(name, _) if name == "retry")));
    }

    #[test]
    fn parses_switch() {
        parse_ok(
            "int f(int c) {\n\
               switch (c) {\n\
                 case 1: return 10;\n\
                 case 2:\n\
                 case 3: return 20;\n\
                 default: break;\n\
               }\n\
               return 0;\n\
             }",
        );
    }

    #[test]
    fn parses_casts_sizeof_and_ternary() {
        parse_ok(
            "unsigned long f(char *p) {\n\
               unsigned long n = sizeof(int) + sizeof *p;\n\
               int c = (int)(unsigned char)*p;\n\
               return c ? n : (unsigned long)0;\n\
             }",
        );
    }

    #[test]
    fn parses_comma_operator_figure1_style() {
        // The paper's Figure 1 uses `if (c < 0x80) ch = c, n = 0;`.
        parse_ok(
            "int f(int c) {\n\
               int ch; int n;\n\
               if (c < 128) ch = c, n = 0;\n\
               else ch = c & 31, n = 1;\n\
               return ch + n;\n\
             }",
        );
    }

    #[test]
    fn parses_string_initialisers() {
        let u = parse_ok(
            "char B64Chars[64] = \"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,\";\n\
             char greeting[] = \"hi\";\n\
             int nums[3] = {1, 2, 3};",
        );
        assert_eq!(u.items.len(), 3);
        let Item::Global(g) = &u.items[1] else {
            panic!()
        };
        assert_eq!(g[0].array_dims, vec![0], "[] must mean inferred");
    }

    #[test]
    fn parses_for_with_declaration() {
        parse_ok("int f() { int s = 0; for (int i = 0; i < 4; ++i) s += i; return s; }");
    }

    #[test]
    fn parses_multiple_declarators_per_line() {
        let u = parse_ok("int f() { int a = 1, b = 2; char *p, buf[16]; return a + b; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        let Stmt::Decl(d) = &f.body[1] else { panic!() };
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0].ty,
            TypeExpr::Ptr(Box::new(TypeExpr::Int {
                width: 1,
                signed: true
            }))
        );
        // `buf` is an array of char, not a pointer.
        assert_eq!(
            d[1].ty,
            TypeExpr::Int {
                width: 1,
                signed: true
            }
        );
        assert_eq!(d[1].array_dims, vec![16]);
    }

    #[test]
    fn assignment_is_right_associative() {
        let u = parse_ok("int f() { int a; int b; a = b = 3; return a; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        let Stmt::Expr(Expr::Assign { rhs, .. }) = &f.body[2] else {
            panic!("expected assignment");
        };
        assert!(matches!(**rhs, Expr::Assign { .. }));
    }

    #[test]
    fn precedence_shift_vs_compare() {
        // `1 << 2 < 3` parses as `(1 << 2) < 3` in our table (C's actual
        // precedence puts shift above comparison, which matches).
        let u = parse_ok("int f() { return 1 << 2 < 3; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        let Stmt::Return(Some(Expr::Binary { op, .. }), _) = &f.body[0] else {
            panic!()
        };
        assert_eq!(*op, BinOp::Lt);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("int f() { x = ; }").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(parse("int f() {").is_err());
        assert!(parse("int 3x;").is_err());
    }

    #[test]
    fn static_and_const_are_accepted() {
        parse_ok("static const char *msg = \"x\"; static int f() { return 0; }");
    }

    #[test]
    fn array_dims_allow_constant_expressions() {
        let u = parse_ok("char buf[4 * 16 + 2];");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        assert_eq!(g[0].array_dims, vec![66]);
    }
}
