//! Semantic analysis: name resolution, type checking, HIR lowering.

use std::collections::HashMap;
use std::fmt;

use crate::ast;
use crate::hir::{self, Builtin, Callee, FuncId, GlobalId, LabelId, LocalId, StrId};
use crate::token::Pos;
use crate::types::{CType, FieldLayout, IntWidth, Layouts, StructId, StructLayout};

/// Type-checking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.pos)
    }
}

type Result<T> = std::result::Result<T, SemaError>;

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T> {
    Err(SemaError {
        message: message.into(),
        pos,
    })
}

/// Analyzes a parsed translation unit into a typed program.
pub fn analyze(unit: &ast::TranslationUnit) -> Result<hir::Program> {
    let mut cx = Context::default();
    cx.collect_structs(unit)?;
    cx.collect_globals_and_sigs(unit)?;
    cx.check_bodies(unit)?;
    Ok(hir::Program {
        layouts: cx.layouts,
        globals: cx.globals,
        strings: cx.strings,
        funcs: cx.funcs,
    })
}

/// A function signature gathered in the first pass.
#[derive(Debug, Clone)]
struct FuncSig {
    params: Vec<CType>,
    ret: CType,
}

#[derive(Default)]
struct Context {
    layouts: Layouts,
    struct_ids: HashMap<String, StructId>,
    globals: Vec<hir::Global>,
    global_ids: HashMap<String, GlobalId>,
    strings: Vec<Vec<u8>>,
    string_ids: HashMap<Vec<u8>, StrId>,
    funcs: Vec<hir::Function>,
    func_ids: HashMap<String, FuncId>,
    sigs: Vec<FuncSig>,
}

impl Context {
    // ------------------------------------------------------------------
    // Pass 1: structs.
    // ------------------------------------------------------------------

    fn collect_structs(&mut self, unit: &ast::TranslationUnit) -> Result<()> {
        for item in &unit.items {
            let ast::Item::Struct(decl) = item else {
                continue;
            };
            if self.struct_ids.contains_key(&decl.name) {
                return err(decl.pos, format!("duplicate struct `{}`", decl.name));
            }
            let mut fields = Vec::new();
            let mut offset = 0u64;
            let mut align = 1u64;
            for f in &decl.fields {
                let base = self.resolve_type(&f.ty, decl.pos)?;
                let fty = apply_dims(base, &f.array_dims);
                if matches!(fty, CType::Void) {
                    return err(decl.pos, format!("field `{}` cannot be void", f.name));
                }
                let fa = self.layouts.align_of(&fty);
                let fs = self.layouts.size_of(&fty);
                offset = offset.div_ceil(fa) * fa;
                fields.push(FieldLayout {
                    name: f.name.clone(),
                    ty: fty,
                    offset,
                });
                offset += fs;
                align = align.max(fa);
            }
            let size = offset.div_ceil(align) * align;
            let id = StructId(self.layouts.structs.len() as u32);
            self.layouts.structs.push(StructLayout {
                name: decl.name.clone(),
                fields,
                size: size.max(1),
                align,
            });
            self.struct_ids.insert(decl.name.clone(), id);
        }
        Ok(())
    }

    fn resolve_type(&self, ty: &ast::TypeExpr, pos: Pos) -> Result<CType> {
        Ok(match ty {
            ast::TypeExpr::Void => CType::Void,
            ast::TypeExpr::Int { width, signed } => CType::Int {
                width: IntWidth::from_bytes(*width),
                signed: *signed,
            },
            ast::TypeExpr::Struct(name) => match self.struct_ids.get(name) {
                Some(&id) => CType::Struct(id),
                None => return err(pos, format!("unknown struct `{name}`")),
            },
            ast::TypeExpr::Ptr(inner) => CType::Ptr(Box::new(self.resolve_type(inner, pos)?)),
        })
    }

    // ------------------------------------------------------------------
    // Pass 2: globals and function signatures.
    // ------------------------------------------------------------------

    fn collect_globals_and_sigs(&mut self, unit: &ast::TranslationUnit) -> Result<()> {
        for item in &unit.items {
            match item {
                ast::Item::Global(decls) => {
                    for d in decls {
                        self.define_global(d)?;
                    }
                }
                ast::Item::Func(f) => {
                    if self.func_ids.contains_key(&f.name) {
                        return err(f.pos, format!("duplicate function `{}`", f.name));
                    }
                    if Builtin::from_name(&f.name).is_some() {
                        return err(f.pos, format!("`{}` shadows a runtime builtin", f.name));
                    }
                    let ret = self.resolve_type(&f.ret, f.pos)?;
                    let mut params = Vec::new();
                    for p in &f.params {
                        let ty = self.resolve_type(&p.ty, f.pos)?.decayed();
                        if !ty.is_scalar() {
                            return err(
                                f.pos,
                                format!(
                                    "parameter `{}` must be scalar (pass structs by pointer)",
                                    p.name
                                ),
                            );
                        }
                        params.push(ty);
                    }
                    let id = FuncId(self.funcs.len() as u32);
                    self.func_ids.insert(f.name.clone(), id);
                    self.sigs.push(FuncSig {
                        params,
                        ret: ret.clone(),
                    });
                    // Body is filled in pass 3; push a placeholder.
                    self.funcs.push(hir::Function {
                        name: f.name.clone(),
                        param_count: f.params.len(),
                        locals: Vec::new(),
                        ret,
                        body: Vec::new(),
                        label_count: 0,
                    });
                }
                ast::Item::Struct(_) => {}
            }
        }
        Ok(())
    }

    fn intern_string(&mut self, bytes: &[u8]) -> StrId {
        let mut with_nul = bytes.to_vec();
        with_nul.push(0);
        if let Some(&id) = self.string_ids.get(&with_nul) {
            return id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(with_nul.clone());
        self.string_ids.insert(with_nul, id);
        id
    }

    fn define_global(&mut self, d: &ast::Declarator) -> Result<()> {
        if self.global_ids.contains_key(&d.name) {
            return err(d.pos, format!("duplicate global `{}`", d.name));
        }
        let base = self.resolve_type(&d.ty, d.pos)?;
        let mut dims = d.array_dims.clone();
        // Infer `[]` from the initialiser.
        if dims.first() == Some(&0) {
            let inferred = match &d.init {
                Some(ast::Initializer::Expr(ast::Expr::StrLit(s, _))) => s.len() as u64 + 1,
                Some(ast::Initializer::List(items)) => items.len() as u64,
                _ => return err(d.pos, "cannot infer array size without initialiser"),
            };
            dims[0] = inferred;
        }
        let ty = apply_dims(base, &dims);
        if matches!(ty, CType::Void) {
            return err(d.pos, "global cannot be void");
        }
        let size = self.layouts.size_of(&ty);
        let mut init = vec![0u8; size as usize];
        let mut relocs: Vec<(u64, StrId)> = Vec::new();
        match &d.init {
            None => {}
            Some(ast::Initializer::Expr(e)) => {
                self.init_scalar_or_string(&ty, e, 0, &mut init, &mut relocs, d.pos)?;
            }
            Some(ast::Initializer::List(items)) => {
                let CType::Array(elem, n) = &ty else {
                    return err(d.pos, "brace initialiser requires an array");
                };
                if items.len() as u64 > *n {
                    return err(d.pos, "too many initialisers");
                }
                let esz = self.layouts.size_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.init_scalar_or_string(
                        elem,
                        item,
                        i as u64 * esz,
                        &mut init,
                        &mut relocs,
                        d.pos,
                    )?;
                }
            }
        }
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(hir::Global {
            name: d.name.clone(),
            ty,
            init,
            relocs,
        });
        self.global_ids.insert(d.name.clone(), id);
        Ok(())
    }

    fn init_scalar_or_string(
        &mut self,
        ty: &CType,
        e: &ast::Expr,
        offset: u64,
        out: &mut [u8],
        relocs: &mut Vec<(u64, StrId)>,
        pos: Pos,
    ) -> Result<()> {
        match (ty, e) {
            // `char buf[N] = "str"`.
            (CType::Array(elem, n), ast::Expr::StrLit(s, spos)) if **elem == CType::CHAR => {
                if s.len() as u64 > *n {
                    return err(*spos, "string initialiser too long");
                }
                let start = offset as usize;
                out[start..start + s.len()].copy_from_slice(s);
                // Remaining bytes stay zero (including the NUL).
                Ok(())
            }
            // `char *p = "str"`.
            (CType::Ptr(_), ast::Expr::StrLit(s, _)) => {
                let id = self.intern_string(s);
                relocs.push((offset, id));
                Ok(())
            }
            (CType::Int { width, .. }, e) => {
                let v = const_eval_ast(e).ok_or_else(|| SemaError {
                    message: "global initialiser must be constant".into(),
                    pos,
                })?;
                let bytes = v.to_le_bytes();
                let w = width.bytes() as usize;
                let start = offset as usize;
                out[start..start + w].copy_from_slice(&bytes[..w]);
                Ok(())
            }
            (CType::Ptr(_), e) => {
                let v = const_eval_ast(e).ok_or_else(|| SemaError {
                    message: "global pointer initialiser must be constant".into(),
                    pos,
                })?;
                let start = offset as usize;
                out[start..start + 8].copy_from_slice(&v.to_le_bytes());
                Ok(())
            }
            _ => err(pos, format!("cannot initialise a value of type {ty}")),
        }
    }

    // ------------------------------------------------------------------
    // Pass 3: function bodies.
    // ------------------------------------------------------------------

    fn check_bodies(&mut self, unit: &ast::TranslationUnit) -> Result<()> {
        let mut func_index = 0usize;
        for item in &unit.items {
            let ast::Item::Func(f) = item else {
                continue;
            };
            let id = FuncId(func_index as u32);
            func_index += 1;
            let mut fx = FuncCx {
                cx: self,
                fid: id,
                locals: Vec::new(),
                scopes: vec![HashMap::new()],
                labels: HashMap::new(),
                placed_labels: std::collections::HashSet::new(),
                label_count: 0,
                breakables: Vec::new(),
                loop_depth: 0,
                pending_gotos: Vec::new(),
            };
            // Parameters are the first local slots.
            for p in &f.params {
                let ty = fx.cx.resolve_type(&p.ty, f.pos)?.decayed();
                fx.declare_local(&p.name, ty, f.pos)?;
            }
            let body = fx.lower_block(&f.body)?;
            // Verify gotos resolved.
            for (name, pos) in &fx.pending_gotos {
                if !fx.placed_labels.contains(name.as_str()) {
                    return err(*pos, format!("goto to undefined label `{name}`"));
                }
            }
            let locals = fx.locals;
            let label_count = fx.label_count;
            let func = &mut self.funcs[id.0 as usize];
            func.locals = locals;
            func.body = body;
            func.label_count = label_count;
        }
        Ok(())
    }
}

/// What `break` currently binds to.
#[derive(Debug, Clone, Copy)]
enum Breakable {
    Loop,
    Switch(LabelId),
}

struct FuncCx<'a> {
    cx: &'a mut Context,
    #[allow(dead_code)]
    fid: FuncId,
    locals: Vec<hir::LocalSlot>,
    scopes: Vec<HashMap<String, LocalId>>,
    labels: HashMap<String, LabelId>,
    placed_labels: std::collections::HashSet<String>,
    label_count: u32,
    breakables: Vec<Breakable>,
    loop_depth: u32,
    pending_gotos: Vec<(String, Pos)>,
}

impl<'a> FuncCx<'a> {
    fn declare_local(&mut self, name: &str, ty: CType, pos: Pos) -> Result<LocalId> {
        if self
            .scopes
            .last()
            .expect("scope stack never empty")
            .contains_key(name)
        {
            return err(pos, format!("duplicate local `{name}`"));
        }
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(hir::LocalSlot {
            name: name.to_owned(),
            ty,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), id);
        Ok(id)
    }

    fn fresh_temp(&mut self, ty: CType) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(hir::LocalSlot {
            name: format!("$tmp{}", id.0),
            ty,
        });
        id
    }

    fn fresh_label(&mut self) -> LabelId {
        let id = LabelId(self.label_count);
        self.label_count += 1;
        id
    }

    fn named_label(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.labels.get(name) {
            return id;
        }
        let id = self.fresh_label();
        self.labels.insert(name.to_owned(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<LocalId> {
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.get(name) {
                return Some(id);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Statements.
    // ------------------------------------------------------------------

    fn lower_block(&mut self, stmts: &[ast::Stmt]) -> Result<Vec<hir::Stmt>> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(s, &mut out)?;
        }
        self.scopes.pop();
        Ok(out)
    }

    fn lower_stmt(&mut self, stmt: &ast::Stmt, out: &mut Vec<hir::Stmt>) -> Result<()> {
        match stmt {
            ast::Stmt::Empty => {}
            ast::Stmt::Expr(e) => {
                let e = self.lower_expr(e)?;
                out.push(hir::Stmt::Expr(e));
            }
            ast::Stmt::Decl(decls) => {
                for d in decls {
                    self.lower_local_decl(d, out)?;
                }
            }
            ast::Stmt::Block(stmts) => {
                let inner = self.lower_block(stmts)?;
                out.extend(inner);
            }
            ast::Stmt::If { cond, then, els } => {
                let cond = self.lower_scalar(cond)?;
                let then = self.lower_stmt_as_block(then)?;
                let els = match els {
                    Some(e) => self.lower_stmt_as_block(e)?,
                    None => Vec::new(),
                };
                out.push(hir::Stmt::If { cond, then, els });
            }
            ast::Stmt::While { cond, body } => {
                let cond = self.lower_scalar(cond)?;
                self.breakables.push(Breakable::Loop);
                self.loop_depth += 1;
                let body = self.lower_stmt_as_block(body)?;
                self.loop_depth -= 1;
                self.breakables.pop();
                out.push(hir::Stmt::While {
                    cond,
                    body,
                    step: None,
                });
            }
            ast::Stmt::DoWhile { body, cond } => {
                self.breakables.push(Breakable::Loop);
                self.loop_depth += 1;
                let body = self.lower_stmt_as_block(body)?;
                self.loop_depth -= 1;
                self.breakables.pop();
                let cond = self.lower_scalar(cond)?;
                out.push(hir::Stmt::DoWhile { body, cond });
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The init's declarations live in their own scope.
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init, out)?;
                }
                let cond = match cond {
                    Some(c) => self.lower_scalar(c)?,
                    None => hir::Expr::Const(1, CType::INT),
                };
                let step = match step {
                    Some(s) => Some(self.lower_expr(s)?),
                    None => None,
                };
                self.breakables.push(Breakable::Loop);
                self.loop_depth += 1;
                let body = self.lower_stmt_as_block(body)?;
                self.loop_depth -= 1;
                self.breakables.pop();
                self.scopes.pop();
                out.push(hir::Stmt::While { cond, body, step });
            }
            ast::Stmt::Switch { scrutinee, body } => {
                self.lower_switch(scrutinee, body, out)?;
            }
            ast::Stmt::Case(_, pos) | ast::Stmt::Default(pos) => {
                return err(*pos, "case/default outside switch");
            }
            ast::Stmt::Break(pos) => match self.breakables.last() {
                Some(Breakable::Loop) => out.push(hir::Stmt::Break),
                Some(Breakable::Switch(end)) => out.push(hir::Stmt::Goto(*end)),
                None => return err(*pos, "break outside loop or switch"),
            },
            ast::Stmt::Continue(pos) => {
                if self.loop_depth == 0 {
                    return err(*pos, "continue outside loop");
                }
                out.push(hir::Stmt::Continue);
            }
            ast::Stmt::Return(e, pos) => {
                let ret_ty = self.cx.funcs[self.fid.0 as usize].ret.clone();
                match (e, &ret_ty) {
                    (None, CType::Void) => out.push(hir::Stmt::Return(None)),
                    (None, _) => return err(*pos, "missing return value"),
                    (Some(_), CType::Void) => return err(*pos, "void function returns a value"),
                    (Some(e), _) => {
                        let v = self.lower_expr(e)?;
                        let v = self.convert(v, &ret_ty, *pos)?;
                        out.push(hir::Stmt::Return(Some(v)));
                    }
                }
            }
            ast::Stmt::Label(name, _) => {
                let id = self.named_label(name);
                self.placed_labels.insert(name.clone());
                out.push(hir::Stmt::Label(id));
            }
            ast::Stmt::Goto(name, pos) => {
                let id = self.named_label(name);
                self.pending_gotos.push((name.clone(), *pos));
                // `named_label` defines eagerly; track for the "label is
                // actually placed" check done at function end.
                let _ = id;
                out.push(hir::Stmt::Goto(id));
            }
        }
        Ok(())
    }

    fn lower_stmt_as_block(&mut self, stmt: &ast::Stmt) -> Result<Vec<hir::Stmt>> {
        match stmt {
            ast::Stmt::Block(stmts) => self.lower_block(stmts),
            other => {
                self.scopes.push(HashMap::new());
                let mut out = Vec::new();
                self.lower_stmt(other, &mut out)?;
                self.scopes.pop();
                Ok(out)
            }
        }
    }

    fn lower_switch(
        &mut self,
        scrutinee: &ast::Expr,
        body: &[ast::Stmt],
        out: &mut Vec<hir::Stmt>,
    ) -> Result<()> {
        let pos = scrutinee.pos();
        let scrut = self.lower_expr(scrutinee)?;
        let scrut_ty = scrut.ty();
        if !scrut_ty.is_integer() {
            return err(pos, "switch scrutinee must be an integer");
        }
        // Stash the scrutinee in a temp so the comparisons are pure.
        let tmp = self.fresh_temp(scrut_ty.clone());
        out.push(hir::Stmt::Expr(hir::Expr::Store {
            addr: Box::new(hir::Expr::LocalAddr(tmp, scrut_ty.clone())),
            value: Box::new(scrut),
            ty: scrut_ty.clone(),
        }));
        let end = self.fresh_label();
        // Collect case labels.
        let mut case_labels: Vec<(i64, LabelId)> = Vec::new();
        let mut default_label: Option<LabelId> = None;
        let mut placements: HashMap<usize, LabelId> = HashMap::new();
        for (i, s) in body.iter().enumerate() {
            match s {
                ast::Stmt::Case(v, _) => {
                    let l = self.fresh_label();
                    case_labels.push((*v, l));
                    placements.insert(i, l);
                }
                ast::Stmt::Default(_) => {
                    let l = self.fresh_label();
                    default_label = Some(l);
                    placements.insert(i, l);
                }
                _ => {}
            }
        }
        // Dispatch.
        for (v, l) in &case_labels {
            out.push(hir::Stmt::GotoIf {
                cond: hir::Expr::Binary {
                    op: hir::BinOp::Eq,
                    lhs: Box::new(hir::Expr::Load {
                        addr: Box::new(hir::Expr::LocalAddr(tmp, scrut_ty.clone())),
                        ty: scrut_ty.clone(),
                    }),
                    rhs: Box::new(hir::Expr::Const(*v, scrut_ty.clone())),
                    ty: CType::INT,
                },
                target: *l,
            });
        }
        out.push(hir::Stmt::Goto(default_label.unwrap_or(end)));
        // Body with case markers replaced by labels; `break` exits.
        self.breakables.push(Breakable::Switch(end));
        self.scopes.push(HashMap::new());
        for (i, s) in body.iter().enumerate() {
            if let Some(l) = placements.get(&i) {
                out.push(hir::Stmt::Label(*l));
                continue;
            }
            self.lower_stmt(s, out)?;
        }
        self.scopes.pop();
        self.breakables.pop();
        out.push(hir::Stmt::Label(end));
        Ok(())
    }

    fn lower_local_decl(&mut self, d: &ast::Declarator, out: &mut Vec<hir::Stmt>) -> Result<()> {
        let base = self.cx.resolve_type(&d.ty, d.pos)?;
        let mut dims = d.array_dims.clone();
        if dims.first() == Some(&0) {
            let inferred = match &d.init {
                Some(ast::Initializer::Expr(ast::Expr::StrLit(s, _))) => s.len() as u64 + 1,
                Some(ast::Initializer::List(items)) => items.len() as u64,
                _ => return err(d.pos, "cannot infer array size without initialiser"),
            };
            dims[0] = inferred;
        }
        let ty = apply_dims(base, &dims);
        if matches!(ty, CType::Void) {
            return err(d.pos, "local cannot be void");
        }
        let id = self.declare_local(&d.name, ty.clone(), d.pos)?;
        match &d.init {
            None => {}
            Some(ast::Initializer::Expr(e)) => match (&ty, e) {
                (CType::Array(elem, n), ast::Expr::StrLit(s, spos)) if **elem == CType::CHAR => {
                    if s.len() as u64 > *n {
                        return err(*spos, "string initialiser too long");
                    }
                    let sid = self.cx.intern_string(s);
                    let count = (s.len() as u64 + 1).min(*n);
                    out.push(hir::Stmt::Expr(hir::Expr::Call {
                        callee: Callee::Builtin(Builtin::Memcpy),
                        args: vec![
                            hir::Expr::Cast {
                                expr: Box::new(hir::Expr::LocalAddr(id, ty.clone())),
                                from: CType::Ptr(Box::new(ty.clone())),
                                to: CType::void_ptr(),
                            },
                            hir::Expr::Cast {
                                expr: Box::new(hir::Expr::Str(sid)),
                                from: CType::char_ptr(),
                                to: CType::void_ptr(),
                            },
                            hir::Expr::Const(count as i64, CType::ULONG),
                        ],
                        ty: CType::void_ptr(),
                    }));
                }
                (_, e) => {
                    if !ty.is_scalar() {
                        return err(d.pos, "only scalars and char arrays can be initialised");
                    }
                    let v = self.lower_expr(e)?;
                    let v = self.convert(v, &ty, d.pos)?;
                    out.push(hir::Stmt::Expr(hir::Expr::Store {
                        addr: Box::new(hir::Expr::LocalAddr(id, ty.clone())),
                        value: Box::new(v),
                        ty: ty.clone(),
                    }));
                }
            },
            Some(ast::Initializer::List(items)) => {
                let CType::Array(elem, n) = &ty else {
                    return err(d.pos, "brace initialiser requires an array");
                };
                if !elem.is_scalar() {
                    return err(d.pos, "brace initialiser elements must be scalar");
                }
                if items.len() as u64 > *n {
                    return err(d.pos, "too many initialisers");
                }
                for (i, item) in items.iter().enumerate() {
                    let v = self.lower_expr(item)?;
                    let v = self.convert(v, elem, d.pos)?;
                    let addr = hir::Expr::PtrAdd {
                        ptr: Box::new(hir::Expr::Cast {
                            expr: Box::new(hir::Expr::LocalAddr(id, ty.clone())),
                            from: CType::Ptr(Box::new(ty.clone())),
                            to: CType::Ptr(elem.clone()),
                        }),
                        count: Box::new(hir::Expr::Const(i as i64, CType::LONG)),
                        elem_size: self.cx.layouts.size_of(elem),
                        ty: CType::Ptr(elem.clone()),
                    };
                    out.push(hir::Stmt::Expr(hir::Expr::Store {
                        addr: Box::new(addr),
                        value: Box::new(v),
                        ty: (**elem).clone(),
                    }));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions.
    // ------------------------------------------------------------------

    /// Lowers an expression used as a scalar (condition/value).
    fn lower_scalar(&mut self, e: &ast::Expr) -> Result<hir::Expr> {
        let pos = e.pos();
        let v = self.lower_expr(e)?;
        if !v.ty().is_scalar() {
            return err(pos, format!("expected scalar, found {}", v.ty()));
        }
        Ok(v)
    }

    /// Lowers an lvalue to (address expression, object type).
    fn lower_lvalue(&mut self, e: &ast::Expr) -> Result<(hir::Expr, CType)> {
        let pos = e.pos();
        match e {
            ast::Expr::Ident(name, pos) => {
                if let Some(id) = self.lookup(name) {
                    let ty = self.locals[id.0 as usize].ty.clone();
                    return Ok((hir::Expr::LocalAddr(id, ty.clone()), ty));
                }
                if let Some(&gid) = self.cx.global_ids.get(name) {
                    let ty = self.cx.globals[gid.0 as usize].ty.clone();
                    return Ok((hir::Expr::GlobalAddr(gid, ty.clone()), ty));
                }
                err(*pos, format!("unknown identifier `{name}`"))
            }
            ast::Expr::Deref(inner, pos) => {
                let p = self.lower_expr(inner)?;
                let pty = p.ty();
                let Some(pointee) = pty.pointee().cloned() else {
                    return err(*pos, format!("cannot dereference {pty}"));
                };
                if matches!(pointee, CType::Void) {
                    return err(*pos, "cannot dereference void*");
                }
                Ok((p, pointee))
            }
            ast::Expr::Index { base, index, pos } => {
                let addr = self.lower_index_addr(base, index, *pos)?;
                let ty = addr
                    .ty()
                    .pointee()
                    .cloned()
                    .expect("index addr is a pointer");
                Ok((addr, ty))
            }
            ast::Expr::Member {
                base,
                field,
                arrow,
                pos,
            } => {
                let (base_addr, sid) = if *arrow {
                    let p = self.lower_expr(base)?;
                    match p.ty() {
                        CType::Ptr(inner) => match *inner {
                            CType::Struct(sid) => (p, sid),
                            other => return err(*pos, format!("`->` on non-struct {other}")),
                        },
                        other => return err(*pos, format!("`->` on non-pointer {other}")),
                    }
                } else {
                    let (addr, ty) = self.lower_lvalue(base)?;
                    match ty {
                        CType::Struct(sid) => (addr, sid),
                        other => return err(*pos, format!("`.` on non-struct {other}")),
                    }
                };
                let layout = self.cx.layouts.layout(sid);
                let Some(f) = layout.field(field) else {
                    return err(
                        *pos,
                        format!("no field `{field}` in struct `{}`", layout.name),
                    );
                };
                let fty = f.ty.clone();
                let offset = f.offset;
                // Field address = base + offset, as checked byte arithmetic
                // within the struct's data unit.
                let addr = hir::Expr::PtrAdd {
                    ptr: Box::new(hir::Expr::Cast {
                        expr: Box::new(base_addr),
                        from: CType::Ptr(Box::new(CType::Struct(sid))),
                        to: CType::char_ptr(),
                    }),
                    count: Box::new(hir::Expr::Const(offset as i64, CType::LONG)),
                    elem_size: 1,
                    ty: CType::char_ptr(),
                };
                let addr = hir::Expr::Cast {
                    expr: Box::new(addr),
                    from: CType::char_ptr(),
                    to: CType::Ptr(Box::new(fty.clone())),
                };
                Ok((addr, fty))
            }
            _ => err(pos, "expression is not an lvalue"),
        }
    }

    /// Address of `base[index]`.
    fn lower_index_addr(
        &mut self,
        base: &ast::Expr,
        index: &ast::Expr,
        pos: Pos,
    ) -> Result<hir::Expr> {
        let b = self.lower_expr(base)?;
        let bty = b.ty();
        let Some(elem) = bty.pointee().cloned() else {
            return err(pos, format!("cannot index {bty}"));
        };
        let idx = self.lower_scalar(index)?;
        if !idx.ty().is_integer() {
            return err(pos, "array index must be an integer");
        }
        let esz = self.cx.layouts.size_of(&elem);
        Ok(hir::Expr::PtrAdd {
            ptr: Box::new(b),
            count: Box::new(idx),
            elem_size: esz,
            ty: CType::Ptr(Box::new(elem)),
        })
    }

    /// Lowers an expression to an rvalue.
    fn lower_expr(&mut self, e: &ast::Expr) -> Result<hir::Expr> {
        let pos = e.pos();
        match e {
            ast::Expr::IntLit(v, _) => {
                // Literals are `int` unless they do not fit.
                let ty = if *v >= i32::MIN as i64 && *v <= i32::MAX as i64 {
                    CType::INT
                } else {
                    CType::LONG
                };
                Ok(hir::Expr::Const(*v, ty))
            }
            ast::Expr::StrLit(s, _) => {
                let id = self.cx.intern_string(s);
                Ok(hir::Expr::Str(id))
            }
            ast::Expr::Ident(..)
            | ast::Expr::Deref(..)
            | ast::Expr::Index { .. }
            | ast::Expr::Member { .. } => {
                let (addr, ty) = self.lower_lvalue(e)?;
                match &ty {
                    // Arrays decay to a pointer to their first element.
                    CType::Array(elem, _) => Ok(hir::Expr::Cast {
                        expr: Box::new(addr),
                        from: CType::Ptr(Box::new(ty.clone())),
                        to: CType::Ptr(elem.clone()),
                    }),
                    CType::Struct(_) => {
                        err(pos, "struct value cannot be used here (take its address)")
                    }
                    _ => Ok(hir::Expr::Load {
                        addr: Box::new(addr),
                        ty,
                    }),
                }
            }
            ast::Expr::AddrOf(inner, _) => {
                let (addr, ty) = self.lower_lvalue(inner)?;
                // `&x` has type T*; the addr expr already is that pointer,
                // except lvalue lowering types array addresses as ptr-to-array.
                let _ = &ty;
                Ok(addr)
            }
            ast::Expr::Unary { op, operand, pos } => {
                let v = self.lower_scalar(operand)?;
                let ty = v.ty();
                match op {
                    ast::UnOp::Not => Ok(hir::Expr::Unary {
                        op: hir::UnOp::Not,
                        operand: Box::new(self.pointer_to_value(v)),
                        ty: CType::INT,
                    }),
                    ast::UnOp::Neg | ast::UnOp::BitNot => {
                        if !ty.is_integer() {
                            return err(*pos, format!("cannot apply operator to {ty}"));
                        }
                        let promoted = promote(&ty);
                        let v = self.convert(v, &promoted, *pos)?;
                        Ok(hir::Expr::Unary {
                            op: match op {
                                ast::UnOp::Neg => hir::UnOp::Neg,
                                _ => hir::UnOp::BitNot,
                            },
                            operand: Box::new(v),
                            ty: promoted,
                        })
                    }
                }
            }
            ast::Expr::Binary { op, lhs, rhs, pos } => self.lower_binary(*op, lhs, rhs, *pos),
            ast::Expr::Assign { lhs, rhs, pos } => {
                let (addr, ty) = self.lower_lvalue(lhs)?;
                if !ty.is_scalar() {
                    return err(*pos, "assignment target must be scalar");
                }
                let v = self.lower_expr(rhs)?;
                let v = self.convert(v, &ty, *pos)?;
                Ok(hir::Expr::Store {
                    addr: Box::new(addr),
                    value: Box::new(v),
                    ty,
                })
            }
            ast::Expr::OpAssign { op, lhs, rhs, pos } => self.lower_op_assign(*op, lhs, rhs, *pos),
            ast::Expr::IncDec {
                target,
                inc,
                prefix,
                pos,
            } => {
                let (addr, ty) = self.lower_lvalue(target)?;
                let (delta, is_ptr) = match &ty {
                    CType::Int { .. } => (1i64, false),
                    CType::Ptr(inner) => {
                        let sz = self.cx.layouts.size_of(inner) as i64;
                        (sz, true)
                    }
                    other => return err(*pos, format!("cannot increment {other}")),
                };
                let delta = if *inc { delta } else { -delta };
                Ok(hir::Expr::IncDec {
                    addr: Box::new(addr),
                    ty,
                    delta,
                    prefix: *prefix,
                    ptr: is_ptr,
                })
            }
            ast::Expr::Conditional {
                cond, then, els, ..
            } => {
                let c = self.lower_scalar(cond)?;
                let t = self.lower_expr(then)?;
                let f = self.lower_expr(els)?;
                let (t, f, ty) = self.unify_branches(t, f, pos)?;
                Ok(hir::Expr::Conditional {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(f),
                    ty,
                })
            }
            ast::Expr::Cast { ty, expr, pos } => {
                let to = self.cx.resolve_type(ty, *pos)?;
                let v = self.lower_expr(expr)?;
                let from = v.ty();
                if matches!(to, CType::Void) {
                    // `(void) e` discards the value.
                    return Ok(hir::Expr::Comma {
                        effects: Box::new(v),
                        result: Box::new(hir::Expr::Const(0, CType::INT)),
                    });
                }
                if !to.is_scalar() || !from.is_scalar() {
                    return err(*pos, format!("cannot cast {from} to {to}"));
                }
                Ok(hir::Expr::Cast {
                    expr: Box::new(v),
                    from,
                    to,
                })
            }
            ast::Expr::SizeofType(ty, pos) => {
                let t = self.cx.resolve_type(ty, *pos)?;
                if matches!(t, CType::Void) {
                    return err(*pos, "sizeof(void)");
                }
                Ok(hir::Expr::Const(
                    self.cx.layouts.size_of(&t) as i64,
                    CType::ULONG,
                ))
            }
            ast::Expr::SizeofExpr(inner, pos) => {
                // The operand is typed but never evaluated.
                let t = match self.lower_lvalue(inner) {
                    Ok((_, ty)) => ty,
                    Err(_) => self.lower_expr(inner)?.ty(),
                };
                if matches!(t, CType::Void) {
                    return err(*pos, "sizeof(void expression)");
                }
                Ok(hir::Expr::Const(
                    self.cx.layouts.size_of(&t) as i64,
                    CType::ULONG,
                ))
            }
            ast::Expr::Comma { lhs, rhs, .. } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                Ok(hir::Expr::Comma {
                    effects: Box::new(l),
                    result: Box::new(r),
                })
            }
            ast::Expr::Call { callee, args, pos } => self.lower_call(callee, args, *pos),
        }
    }

    /// Converts pointer rvalues used in boolean context to plain values
    /// (no-op; kept for clarity at call sites).
    fn pointer_to_value(&self, v: hir::Expr) -> hir::Expr {
        v
    }

    fn lower_call(&mut self, callee: &str, args: &[ast::Expr], pos: Pos) -> Result<hir::Expr> {
        // User-defined functions shadow nothing; builtins resolve second.
        if let Some(&fid) = self.cx.func_ids.get(callee) {
            let sig = self.cx.sigs[fid.0 as usize].clone();
            if args.len() != sig.params.len() {
                return err(
                    pos,
                    format!(
                        "`{callee}` expects {} argument(s), got {}",
                        sig.params.len(),
                        args.len()
                    ),
                );
            }
            let mut lowered = Vec::new();
            for (a, pty) in args.iter().zip(&sig.params) {
                let v = self.lower_expr(a)?;
                lowered.push(self.convert(v, pty, pos)?);
            }
            return Ok(hir::Expr::Call {
                callee: Callee::Func(fid),
                args: lowered,
                ty: sig.ret,
            });
        }
        if let Some(b) = Builtin::from_name(callee) {
            let (params, ret) = builtin_sig(b);
            if args.len() != params.len() {
                return err(
                    pos,
                    format!(
                        "builtin `{callee}` expects {} argument(s), got {}",
                        params.len(),
                        args.len()
                    ),
                );
            }
            let mut lowered = Vec::new();
            for (a, pty) in args.iter().zip(&params) {
                let v = self.lower_expr(a)?;
                lowered.push(self.convert(v, pty, pos)?);
            }
            return Ok(hir::Expr::Call {
                callee: Callee::Builtin(b),
                args: lowered,
                ty: ret,
            });
        }
        err(pos, format!("unknown function `{callee}`"))
    }

    fn lower_op_assign(
        &mut self,
        op: ast::BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        pos: Pos,
    ) -> Result<hir::Expr> {
        let (addr, ty) = self.lower_lvalue(lhs)?;
        if !ty.is_scalar() {
            return err(pos, "compound assignment target must be scalar");
        }
        // Evaluate the address once via a temp if it has effects; plain
        // local/global addresses are pure.
        let (addr_setup, addr_use): (Option<hir::Expr>, hir::Expr) = match &addr {
            hir::Expr::LocalAddr(..) | hir::Expr::GlobalAddr(..) => (None, addr.clone()),
            _ => {
                let pty = CType::Ptr(Box::new(ty.clone()));
                let tmp = self.fresh_temp(pty.clone());
                let setup = hir::Expr::Store {
                    addr: Box::new(hir::Expr::LocalAddr(tmp, pty.clone())),
                    value: Box::new(addr),
                    ty: pty.clone(),
                };
                let use_ = hir::Expr::Load {
                    addr: Box::new(hir::Expr::LocalAddr(tmp, pty.clone())),
                    ty: pty,
                };
                (Some(setup), use_)
            }
        };
        let current = hir::Expr::Load {
            addr: Box::new(addr_use.clone()),
            ty: ty.clone(),
        };
        let rhs_v = self.lower_expr(rhs)?;
        let combined = match (&ty, op) {
            // Pointer += / -= integer.
            (CType::Ptr(inner), ast::BinOp::Add | ast::BinOp::Sub) => {
                let esz = self.cx.layouts.size_of(inner);
                let count = if matches!(op, ast::BinOp::Sub) {
                    hir::Expr::Unary {
                        op: hir::UnOp::Neg,
                        operand: Box::new(rhs_v),
                        ty: CType::LONG,
                    }
                } else {
                    rhs_v
                };
                hir::Expr::PtrAdd {
                    ptr: Box::new(current),
                    count: Box::new(count),
                    elem_size: esz,
                    ty: ty.clone(),
                }
            }
            _ => {
                let bin = self.build_arith(op, current, rhs_v, pos)?;
                self.convert(bin, &ty, pos)?
            }
        };
        let store = hir::Expr::Store {
            addr: Box::new(addr_use),
            value: Box::new(combined),
            ty,
        };
        Ok(match addr_setup {
            None => store,
            Some(setup) => hir::Expr::Comma {
                effects: Box::new(setup),
                result: Box::new(store),
            },
        })
    }

    fn lower_binary(
        &mut self,
        op: ast::BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        pos: Pos,
    ) -> Result<hir::Expr> {
        if matches!(op, ast::BinOp::LogicalAnd | ast::BinOp::LogicalOr) {
            let l = self.lower_scalar(lhs)?;
            let r = self.lower_scalar(rhs)?;
            return Ok(hir::Expr::ShortCircuit {
                and: matches!(op, ast::BinOp::LogicalAnd),
                lhs: Box::new(l),
                rhs: Box::new(r),
            });
        }
        let l = self.lower_scalar(lhs)?;
        let r = self.lower_scalar(rhs)?;
        self.build_arith(op, l, r, pos)
    }

    /// Builds a typed binary operation from already-lowered operands,
    /// handling pointer arithmetic, comparisons, and usual conversions.
    fn build_arith(
        &mut self,
        op: ast::BinOp,
        l: hir::Expr,
        r: hir::Expr,
        pos: Pos,
    ) -> Result<hir::Expr> {
        let lt = l.ty();
        let rt = r.ty();
        use ast::BinOp as B;
        // Pointer arithmetic.
        match (&lt, &rt, op) {
            (CType::Ptr(inner), t, B::Add) if t.is_integer() => {
                let esz = self.cx.layouts.size_of(inner).max(1);
                return Ok(hir::Expr::PtrAdd {
                    ptr: Box::new(l),
                    count: Box::new(r),
                    elem_size: esz,
                    ty: lt.clone(),
                });
            }
            (t, CType::Ptr(inner), B::Add) if t.is_integer() => {
                let esz = self.cx.layouts.size_of(inner).max(1);
                return Ok(hir::Expr::PtrAdd {
                    ptr: Box::new(r),
                    count: Box::new(l),
                    elem_size: esz,
                    ty: rt.clone(),
                });
            }
            (CType::Ptr(inner), t, B::Sub) if t.is_integer() => {
                let esz = self.cx.layouts.size_of(inner).max(1);
                let neg = hir::Expr::Unary {
                    op: hir::UnOp::Neg,
                    operand: Box::new(r),
                    ty: CType::LONG,
                };
                return Ok(hir::Expr::PtrAdd {
                    ptr: Box::new(l),
                    count: Box::new(neg),
                    elem_size: esz,
                    ty: lt.clone(),
                });
            }
            (CType::Ptr(inner), CType::Ptr(_), B::Sub) => {
                let esz = self.cx.layouts.size_of(inner).max(1);
                return Ok(hir::Expr::PtrDiff {
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                    elem_size: esz,
                });
            }
            _ => {}
        }
        // Comparisons.
        if matches!(op, B::Eq | B::Ne | B::Lt | B::Gt | B::Le | B::Ge) {
            let unsigned = if lt.is_pointer() || rt.is_pointer() {
                true
            } else {
                let common = usual_arith(&lt, &rt);
                !common.is_signed()
            };
            let (l, r) = if lt.is_pointer() || rt.is_pointer() {
                (l, r)
            } else {
                let common = usual_arith(&lt, &rt);
                (
                    self.convert(l, &common, pos)?,
                    self.convert(r, &common, pos)?,
                )
            };
            let hop = match (op, unsigned) {
                (B::Eq, _) => hir::BinOp::Eq,
                (B::Ne, _) => hir::BinOp::Ne,
                (B::Lt, false) => hir::BinOp::LtS,
                (B::Lt, true) => hir::BinOp::LtU,
                (B::Le, false) => hir::BinOp::LeS,
                (B::Le, true) => hir::BinOp::LeU,
                (B::Gt, false) => hir::BinOp::GtS,
                (B::Gt, true) => hir::BinOp::GtU,
                (B::Ge, false) => hir::BinOp::GeS,
                (B::Ge, true) => hir::BinOp::GeU,
                _ => unreachable!(),
            };
            return Ok(hir::Expr::Binary {
                op: hop,
                lhs: Box::new(l),
                rhs: Box::new(r),
                ty: CType::INT,
            });
        }
        // Remaining value arithmetic requires integers.
        if !lt.is_integer() || !rt.is_integer() {
            return err(pos, format!("invalid operands: {lt} and {rt}"));
        }
        let common = usual_arith(&lt, &rt);
        // Shifts keep the left operand's promoted type.
        let (result_ty, l, r) = if matches!(op, B::Shl | B::Shr) {
            let lp = promote(&lt);
            (
                lp.clone(),
                self.convert(l, &lp, pos)?,
                self.convert(r, &CType::INT, pos)?,
            )
        } else {
            (
                common.clone(),
                self.convert(l, &common, pos)?,
                self.convert(r, &common, pos)?,
            )
        };
        let signed = result_ty.is_signed();
        let hop = match op {
            B::Add => hir::BinOp::Add,
            B::Sub => hir::BinOp::Sub,
            B::Mul => hir::BinOp::Mul,
            B::Div => {
                if signed {
                    hir::BinOp::DivS
                } else {
                    hir::BinOp::DivU
                }
            }
            B::Rem => {
                if signed {
                    hir::BinOp::RemS
                } else {
                    hir::BinOp::RemU
                }
            }
            B::And => hir::BinOp::And,
            B::Or => hir::BinOp::Or,
            B::Xor => hir::BinOp::Xor,
            B::Shl => hir::BinOp::Shl,
            B::Shr => {
                if signed {
                    hir::BinOp::ShrS
                } else {
                    hir::BinOp::ShrU
                }
            }
            _ => unreachable!("handled above"),
        };
        Ok(hir::Expr::Binary {
            op: hop,
            lhs: Box::new(l),
            rhs: Box::new(r),
            ty: result_ty,
        })
    }

    /// Makes the branches of a conditional agree on a type.
    fn unify_branches(
        &mut self,
        t: hir::Expr,
        f: hir::Expr,
        pos: Pos,
    ) -> Result<(hir::Expr, hir::Expr, CType)> {
        let tt = t.ty();
        let ft = f.ty();
        if tt == ft {
            return Ok((t, f, tt));
        }
        if tt.is_pointer() && (ft.is_pointer() || ft.is_integer()) {
            let f = self.convert(f, &tt, pos)?;
            return Ok((t, f, tt));
        }
        if ft.is_pointer() && tt.is_integer() {
            let t = self.convert(t, &ft, pos)?;
            return Ok((t, f, ft));
        }
        if tt.is_integer() && ft.is_integer() {
            let common = usual_arith(&tt, &ft);
            let t = self.convert(t, &common, pos)?;
            let f = self.convert(f, &common, pos)?;
            return Ok((t, f, common));
        }
        err(
            pos,
            format!("incompatible conditional branches: {tt} / {ft}"),
        )
    }

    /// Implicit conversion of a value to `to`.
    fn convert(&mut self, v: hir::Expr, to: &CType, pos: Pos) -> Result<hir::Expr> {
        let from = v.ty();
        if &from == to {
            return Ok(v);
        }
        if !from.is_scalar() || !to.is_scalar() {
            return err(pos, format!("cannot convert {from} to {to}"));
        }
        Ok(hir::Expr::Cast {
            expr: Box::new(v),
            from,
            to: to.clone(),
        })
    }
}

/// Integer promotion: anything narrower than `int` becomes `int`.
fn promote(ty: &CType) -> CType {
    match ty {
        CType::Int { width, .. } if width.bytes() < 4 => CType::INT,
        other => other.clone(),
    }
}

/// C's usual arithmetic conversions (integer types only).
fn usual_arith(a: &CType, b: &CType) -> CType {
    let a = promote(a);
    let b = promote(b);
    let (
        CType::Int {
            width: wa,
            signed: sa,
        },
        CType::Int {
            width: wb,
            signed: sb,
        },
    ) = (&a, &b)
    else {
        return CType::LONG;
    };
    if wa == wb {
        return CType::Int {
            width: *wa,
            signed: *sa && *sb,
        };
    }
    let (wide_w, wide_s, narrow_s) = if wa > wb { (wa, sa, sb) } else { (wb, sb, sa) };
    // If the wider type is unsigned, the result is unsigned; if the wider
    // is signed it can represent all narrower values, so signedness of the
    // wider wins.
    let _ = narrow_s;
    CType::Int {
        width: *wide_w,
        signed: *wide_s,
    }
}

/// Builtin runtime signatures.
fn builtin_sig(b: Builtin) -> (Vec<CType>, CType) {
    let cp = CType::char_ptr;
    let vp = CType::void_ptr;
    match b {
        Builtin::Malloc => (vec![CType::ULONG], vp()),
        Builtin::Free => (vec![vp()], CType::Void),
        Builtin::Realloc => (vec![vp(), CType::ULONG], vp()),
        Builtin::Strlen => (vec![cp()], CType::ULONG),
        Builtin::Strcpy => (vec![cp(), cp()], cp()),
        Builtin::Strncpy => (vec![cp(), cp(), CType::ULONG], cp()),
        Builtin::Strcat => (vec![cp(), cp()], cp()),
        Builtin::Strncat => (vec![cp(), cp(), CType::ULONG], cp()),
        Builtin::Strcmp => (vec![cp(), cp()], CType::INT),
        Builtin::Strncmp => (vec![cp(), cp(), CType::ULONG], CType::INT),
        Builtin::Strchr => (vec![cp(), CType::INT], cp()),
        Builtin::Strrchr => (vec![cp(), CType::INT], cp()),
        Builtin::Memcpy => (vec![vp(), vp(), CType::ULONG], vp()),
        Builtin::Memmove => (vec![vp(), vp(), CType::ULONG], vp()),
        Builtin::Memset => (vec![vp(), CType::INT, CType::ULONG], vp()),
        Builtin::Memcmp => (vec![vp(), vp(), CType::ULONG], CType::INT),
        Builtin::PrintStr => (vec![cp()], CType::Void),
        Builtin::PrintInt => (vec![CType::LONG], CType::Void),
        Builtin::Putchar => (vec![CType::INT], CType::INT),
        Builtin::Abort => (vec![], CType::Void),
        Builtin::Exit => (vec![CType::INT], CType::Void),
        Builtin::Isspace
        | Builtin::Isdigit
        | Builtin::Isalpha
        | Builtin::Isprint
        | Builtin::Toupper
        | Builtin::Tolower => (vec![CType::INT], CType::INT),
        Builtin::Atoi => (vec![cp()], CType::INT),
        Builtin::ReadInput => (vec![cp(), CType::LONG], CType::LONG),
        Builtin::EmitOutput => (vec![cp(), CType::LONG], CType::Void),
        Builtin::IoWait => (vec![CType::LONG], CType::Void),
    }
}

/// Applies array dimensions (outermost first) to a base type.
fn apply_dims(base: CType, dims: &[u64]) -> CType {
    let mut ty = base;
    for &d in dims.iter().rev() {
        ty = CType::Array(Box::new(ty), d);
    }
    ty
}

/// Constant folding over AST expressions (global initialisers).
fn const_eval_ast(e: &ast::Expr) -> Option<i64> {
    Some(match e {
        ast::Expr::IntLit(v, _) => *v,
        ast::Expr::Unary { op, operand, .. } => {
            let v = const_eval_ast(operand)?;
            match op {
                ast::UnOp::Neg => v.wrapping_neg(),
                ast::UnOp::BitNot => !v,
                ast::UnOp::Not => (v == 0) as i64,
            }
        }
        ast::Expr::Binary { op, lhs, rhs, .. } => {
            let l = const_eval_ast(lhs)?;
            let r = const_eval_ast(rhs)?;
            use ast::BinOp as B;
            match op {
                B::Add => l.wrapping_add(r),
                B::Sub => l.wrapping_sub(r),
                B::Mul => l.wrapping_mul(r),
                B::Div => l.checked_div(r)?,
                B::Rem => l.checked_rem(r)?,
                B::And => l & r,
                B::Or => l | r,
                B::Xor => l ^ r,
                B::Shl => l.wrapping_shl(r as u32),
                B::Shr => l.wrapping_shr(r as u32),
                B::Eq => (l == r) as i64,
                B::Ne => (l != r) as i64,
                B::Lt => (l < r) as i64,
                B::Gt => (l > r) as i64,
                B::Le => (l <= r) as i64,
                B::Ge => (l >= r) as i64,
                B::LogicalAnd => ((l != 0) && (r != 0)) as i64,
                B::LogicalOr => ((l != 0) || (r != 0)) as i64,
            }
        }
        ast::Expr::Cast { expr, .. } => const_eval_ast(expr)?,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> hir::Program {
        let unit = parse(src).expect("parse");
        match analyze(&unit) {
            Ok(p) => p,
            Err(e) => panic!("sema failed: {e}\nsource:\n{src}"),
        }
    }

    fn check_err(src: &str) -> SemaError {
        let unit = parse(src).expect("parse");
        analyze(&unit).expect_err("expected sema error")
    }

    #[test]
    fn minimal_program() {
        let p = check("int main() { return 0; }");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn unknown_identifier_rejected() {
        let e = check_err("int f() { return x; }");
        assert!(e.message.contains("unknown identifier"));
    }

    #[test]
    fn unknown_function_rejected() {
        let e = check_err("int f() { return g(); }");
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn arg_count_checked() {
        let e = check_err("int g(int a) { return a; } int f() { return g(1, 2); }");
        assert!(e.message.contains("expects 1 argument"));
    }

    #[test]
    fn struct_layout_is_padded() {
        let p = check("struct s { char c; long l; char d; }; struct s g;");
        let layout = &p.layouts.structs[0];
        assert_eq!(layout.fields[0].offset, 0);
        assert_eq!(layout.fields[1].offset, 8);
        assert_eq!(layout.fields[2].offset, 16);
        assert_eq!(layout.size, 24);
        assert_eq!(layout.align, 8);
    }

    #[test]
    fn array_indexing_lowers_to_ptr_add() {
        let p = check("int xs[4]; int f(int i) { return xs[i]; }");
        let hir::Stmt::Return(Some(hir::Expr::Load { addr, .. })) = &p.funcs[0].body[0] else {
            panic!("expected return of load");
        };
        assert!(matches!(**addr, hir::Expr::PtrAdd { elem_size: 4, .. }));
    }

    #[test]
    fn member_access_resolves_offsets() {
        let p = check(
            "struct pt { int x; int y; };\n\
             int f(struct pt *p) { return p->y; }",
        );
        // The offset const 4 must appear inside the address computation.
        let body = format!("{:?}", p.funcs[0].body);
        assert!(body.contains("Const(4"), "{body}");
    }

    #[test]
    fn string_literals_are_interned_with_nul() {
        let p = check("char *f() { return \"hi\"; } char *g() { return \"hi\"; }");
        assert_eq!(p.strings.len(), 1);
        assert_eq!(p.strings[0], b"hi\0".to_vec());
    }

    #[test]
    fn char_array_global_with_string_init() {
        let p = check("char tab[8] = \"abc\";");
        assert_eq!(p.globals[0].init[..4], *b"abc\0");
        assert_eq!(p.globals[0].init.len(), 8);
    }

    #[test]
    fn global_pointer_to_string_uses_reloc() {
        let p = check("char *msg = \"boo\";");
        assert_eq!(p.globals[0].relocs.len(), 1);
        assert_eq!(p.globals[0].relocs[0].0, 0);
    }

    #[test]
    fn sizeof_is_constant() {
        let p = check(
            "struct s { long a; char b; };\n\
             unsigned long f() { return sizeof(struct s) + sizeof(char *); }",
        );
        let hir::Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        // 16 + 8 folded at lowering time? We keep the add; both sides const.
        let dbg = format!("{e:?}");
        assert!(dbg.contains("Const(16") && dbg.contains("Const(8"), "{dbg}");
    }

    #[test]
    fn pointer_minus_pointer_gives_long() {
        let p = check("long f(char *a, char *b) { return a - b; }");
        let hir::Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, hir::Expr::PtrDiff { .. }));
    }

    #[test]
    fn signed_unsigned_comparison_selection() {
        let p = check(
            "int f(unsigned int a, unsigned int b) { return a < b; }\n\
             int g(int a, int b) { return a < b; }\n\
             int h(char *a, char *b) { return a < b; }",
        );
        let find_op = |f: &hir::Function| format!("{:?}", f.body);
        assert!(find_op(&p.funcs[0]).contains("LtU"));
        assert!(find_op(&p.funcs[1]).contains("LtS"));
        assert!(find_op(&p.funcs[2]).contains("LtU"));
    }

    #[test]
    fn char_promotes_to_int_in_arithmetic() {
        let p = check("int f(char c) { return c + 1; }");
        let dbg = format!("{:?}", p.funcs[0].body);
        // A cast from char to int must be present.
        assert!(dbg.contains("Cast"), "{dbg}");
    }

    #[test]
    fn switch_lowered_to_dispatch() {
        let p = check(
            "int f(int c) {\n\
               int r = 0;\n\
               switch (c) { case 1: r = 10; break; case 2: r = 20; break; default: r = -1; }\n\
               return r;\n\
             }",
        );
        let dbg = format!("{:?}", p.funcs[0].body);
        assert!(dbg.contains("GotoIf"), "{dbg}");
    }

    #[test]
    fn goto_undefined_label_rejected() {
        let e = check_err("int f() { goto nowhere; return 0; }");
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = check_err("int f() { break; return 0; }");
        assert!(e.message.contains("break outside"));
    }

    #[test]
    fn void_return_checks() {
        assert!(check_err("void f() { return 3; }")
            .message
            .contains("void function"));
        assert!(check_err("int f() { return; }")
            .message
            .contains("missing return value"));
    }

    #[test]
    fn local_shadowing_in_nested_scopes() {
        check("int f() { int x = 1; { int x = 2; x++; } return x; }");
        let e = check_err("int f() { int x; int x; return 0; }");
        assert!(e.message.contains("duplicate local"));
    }

    #[test]
    fn figure1_style_code_type_checks() {
        // A condensed version of the paper's utf8_to_utf7 skeleton.
        check(
            "char *utf8_to_utf7(char *u8, size_t u8len) {\n\
               char *buf, *p;\n\
               int ch; int n; int i; int b = 0; int k = 0; int base64 = 0;\n\
               p = buf = (char *) malloc(u8len * 2 + 1);\n\
               while (u8len) {\n\
                 unsigned char c = *u8;\n\
                 if (c < 0x80) ch = c, n = 0;\n\
                 else if (c < 0xc2) goto bail;\n\
                 else ch = c & 0x1f, n = 1;\n\
                 u8++; u8len--;\n\
                 if (n > u8len) goto bail;\n\
                 for (i = 0; i < n; i++) {\n\
                   if ((u8[i] & 0xc0) != 0x80) goto bail;\n\
                   ch = (ch << 6) | (u8[i] & 0x3f);\n\
                 }\n\
                 u8 += n; u8len -= n;\n\
                 *p++ = ch;\n\
               }\n\
               *p++ = '\\0';\n\
               return buf;\n\
             bail:\n\
               free(buf);\n\
               return 0;\n\
             }",
        );
    }

    #[test]
    fn inc_dec_on_pointers_scales() {
        let p = check("char *f(int *p) { p++; return (char *) p; }");
        let dbg = format!("{:?}", p.funcs[0].body);
        assert!(dbg.contains("delta: 4"), "{dbg}");
    }

    #[test]
    fn conditional_branches_unify() {
        check("int f(int c) { return c ? 1 : 2; }");
        check("char *f(int c, char *p) { return c ? p : 0; }");
        let e = check_err("struct s { int x; }; struct s g; int f(int c) { return c ? g : 1; }");
        assert!(!e.message.is_empty());
    }

    #[test]
    fn builtin_shadowing_rejected() {
        let e = check_err("int malloc(int x) { return x; }");
        assert!(e.message.contains("shadows a runtime builtin"));
    }

    #[test]
    fn usual_arith_conversions() {
        assert_eq!(usual_arith(&CType::CHAR, &CType::CHAR), CType::INT);
        assert_eq!(usual_arith(&CType::INT, &CType::UINT), CType::UINT);
        assert_eq!(usual_arith(&CType::UINT, &CType::LONG), CType::LONG);
        assert_eq!(usual_arith(&CType::ULONG, &CType::LONG), CType::ULONG);
        assert_eq!(usual_arith(&CType::UCHAR, &CType::INT), CType::INT);
    }
}
