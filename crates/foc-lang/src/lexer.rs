//! Hand-written lexer for MiniC.

use std::fmt;

use crate::token::{Keyword, Pos, Tok, Token};

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.pos)
    }
}

/// Streaming tokenizer over MiniC source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            offset: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == Tok::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            offset: self.offset,
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.offset).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.offset + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.offset += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            pos: self.pos(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    pos: start,
                                });
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: Tok::Eof,
                pos,
            });
        };
        let kind = match c {
            b'0'..=b'9' => self.lex_number()?,
            b'\'' => self.lex_char()?,
            b'"' => self.lex_string()?,
            c if c == b'_' || c.is_ascii_alphabetic() => self.lex_ident(),
            _ => self.lex_operator()?,
        };
        Ok(Token { kind, pos })
    }

    fn lex_ident(&mut self) -> Tok {
        let start = self.offset;
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.src[start..self.offset]).expect("identifier bytes are ASCII");
        match Keyword::from_str(text) {
            Some(kw) => Tok::Kw(kw),
            None => Tok::Ident(text.to_owned()),
        }
    }

    fn lex_number(&mut self) -> Result<Tok, LexError> {
        let start = self.offset;
        let mut radix = 10;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            radix = 16;
        }
        let digits_start = self.offset;
        while let Some(c) = self.peek() {
            let ok = match radix {
                16 => c.is_ascii_hexdigit(),
                _ => c.is_ascii_digit(),
            };
            if ok {
                self.bump();
            } else {
                break;
            }
        }
        // Accept (and ignore) C integer suffixes.
        while let Some(c) = self.peek() {
            if matches!(c, b'u' | b'U' | b'l' | b'L') {
                self.bump();
            } else {
                break;
            }
        }
        let text_range = if radix == 16 {
            &self.src[digits_start..self.offset]
        } else {
            &self.src[start..self.offset]
        };
        let digits: String = text_range
            .iter()
            .take_while(|c| c.is_ascii_alphanumeric())
            .filter(|c| !matches!(c, b'u' | b'U' | b'l' | b'L') || radix == 16)
            .map(|&c| c as char)
            .collect();
        let digits: String = digits.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        if digits.is_empty() {
            return Err(self.err("malformed integer literal"));
        }
        let value = u64::from_str_radix(&digits, radix)
            .map_err(|_| self.err("integer literal out of range"))?;
        Ok(Tok::IntLit(value as i64))
    }

    fn lex_escape(&mut self) -> Result<u8, LexError> {
        // Caller consumed the backslash.
        let Some(c) = self.bump() else {
            return Err(self.err("unterminated escape sequence"));
        };
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while let Some(h) = self.peek() {
                    if h.is_ascii_hexdigit() {
                        self.bump();
                        v = v * 16 + (h as char).to_digit(16).expect("hex digit");
                        any = true;
                        if v > 0xFF {
                            return Err(self.err("hex escape out of range"));
                        }
                    } else {
                        break;
                    }
                }
                if !any {
                    return Err(self.err("empty hex escape"));
                }
                v as u8
            }
            other => {
                return Err(self.err(format!("unknown escape `\\{}`", other as char)));
            }
        })
    }

    fn lex_char(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => self.lex_escape()?,
            Some(b'\'') => return Err(self.err("empty character literal")),
            Some(c) => c,
            None => return Err(self.err("unterminated character literal")),
        };
        if self.bump() != Some(b'\'') {
            return Err(self.err("unterminated character literal"));
        }
        // Character literals are (signed) char values promoted to int.
        Ok(Tok::IntLit(c as i8 as i64))
    }

    fn lex_string(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => bytes.push(self.lex_escape()?),
                Some(b'\n') | None => return Err(self.err("unterminated string literal")),
                Some(c) => bytes.push(c),
            }
        }
        // Adjacent string literals concatenate, as in C.
        self.skip_trivia()?;
        if self.peek() == Some(b'"') {
            if let Tok::StrLit(more) = self.lex_string()? {
                bytes.extend_from_slice(&more);
            }
        }
        Ok(Tok::StrLit(bytes))
    }

    fn lex_operator(&mut self) -> Result<Tok, LexError> {
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Lexer<'a>, next: u8, yes: Tok, no: Tok| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b':' => Tok::Colon,
            b'?' => Tok::Question,
            b'.' => Tok::Dot,
            b'~' => Tok::Tilde,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    Tok::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Tok::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    Tok::MinusAssign
                }
                Some(b'>') => {
                    self.bump();
                    Tok::Arrow
                }
                _ => Tok::Minus,
            },
            b'*' => two(self, b'=', Tok::StarAssign, Tok::Star),
            b'/' => two(self, b'=', Tok::SlashAssign, Tok::Slash),
            b'%' => two(self, b'=', Tok::PercentAssign, Tok::Percent),
            b'^' => two(self, b'=', Tok::CaretAssign, Tok::Caret),
            b'!' => two(self, b'=', Tok::Ne, Tok::Bang),
            b'=' => two(self, b'=', Tok::Eq, Tok::Assign),
            b'&' => match self.peek() {
                Some(b'&') => {
                    self.bump();
                    Tok::AndAnd
                }
                Some(b'=') => {
                    self.bump();
                    Tok::AmpAssign
                }
                _ => Tok::Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => {
                    self.bump();
                    Tok::OrOr
                }
                Some(b'=') => {
                    self.bump();
                    Tok::PipeAssign
                }
                _ => Tok::Pipe,
            },
            b'<' => match self.peek() {
                Some(b'<') => {
                    self.bump();
                    two(self, b'=', Tok::ShlAssign, Tok::Shl)
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Le
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'>') => {
                    self.bump();
                    two(self, b'=', Tok::ShrAssign, Tok::Shr)
                }
                Some(b'=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        let toks = kinds("int main unsigned charlie size_t");
        assert_eq!(
            toks,
            vec![
                Tok::Kw(Keyword::Int),
                Tok::Ident("main".into()),
                Tok::Kw(Keyword::Unsigned),
                Tok::Ident("charlie".into()),
                Tok::Kw(Keyword::SizeT),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 0x1f 0xFF 10UL 7l"),
            vec![
                Tok::IntLit(0),
                Tok::IntLit(42),
                Tok::IntLit(0x1F),
                Tok::IntLit(0xFF),
                Tok::IntLit(10),
                Tok::IntLit(7),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_char_literals_with_sign_extension() {
        assert_eq!(kinds("'a'"), vec![Tok::IntLit(97), Tok::Eof]);
        assert_eq!(kinds(r"'\n'"), vec![Tok::IntLit(10), Tok::Eof]);
        assert_eq!(kinds(r"'\0'"), vec![Tok::IntLit(0), Tok::Eof]);
        // 0xFF as a signed char is -1: the Sendmail-critical case.
        assert_eq!(kinds(r"'\xff'"), vec![Tok::IntLit(-1), Tok::Eof]);
        assert_eq!(kinds(r"'\\'"), vec![Tok::IntLit(92), Tok::Eof]);
    }

    #[test]
    fn lexes_strings_with_escapes_and_concatenation() {
        assert_eq!(
            kinds(r#""ab\tc""#),
            vec![Tok::StrLit(b"ab\tc".to_vec()), Tok::Eof]
        );
        assert_eq!(
            kinds(r#""foo" "bar""#),
            vec![Tok::StrLit(b"foobar".to_vec()), Tok::Eof]
        );
        assert_eq!(
            kinds(r#""\x41\x42""#),
            vec![Tok::StrLit(b"AB".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn lexes_operators_maximal_munch() {
        assert_eq!(
            kinds("a->b ++ -- <<= >>= <= >= == != && || += -= *= /= %= &= |= ^="),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::PlusPlus,
                Tok::MinusMinus,
                Tok::ShlAssign,
                Tok::ShrAssign,
                Tok::Le,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::PlusAssign,
                Tok::MinusAssign,
                Tok::StarAssign,
                Tok::SlashAssign,
                Tok::PercentAssign,
                Tok::AmpAssign,
                Tok::PipeAssign,
                Tok::CaretAssign,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // line\n b /* block\n over lines */ c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = Lexer::new("int x = @;").tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos.line, 1);
        let err = Lexer::new("\n\n\"abc").tokenize().unwrap_err();
        assert_eq!(err.pos.line, 3);
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(Lexer::new("/* never ends").tokenize().is_err());
    }
}
