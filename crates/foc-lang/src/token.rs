//! Token definitions for MiniC.

use std::fmt;

/// Source position (byte offset, line, column), 1-based line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexed token with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Keywords recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Void,
    Char,
    Short,
    Int,
    Long,
    Signed,
    Unsigned,
    Struct,
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
    Sizeof,
    Static,
    Const,
    /// `size_t`, treated as a built-in alias for `unsigned long`.
    SizeT,
}

impl Keyword {
    /// Maps an identifier spelling to a keyword.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not a parse
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "void" => Keyword::Void,
            "char" => Keyword::Char,
            "short" => Keyword::Short,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "signed" => Keyword::Signed,
            "unsigned" => Keyword::Unsigned,
            "struct" => Keyword::Struct,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "return" => Keyword::Return,
            "goto" => Keyword::Goto,
            "sizeof" => Keyword::Sizeof,
            "static" => Keyword::Static,
            "const" => Keyword::Const,
            "size_t" => Keyword::SizeT,
            _ => return None,
        })
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Keyword),
    /// Integer literal (value already decoded; char literals become this).
    IntLit(i64),
    /// String literal (escape sequences decoded, no terminating NUL).
    StrLit(Vec<u8>),

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,

    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,

    PlusPlus,
    MinusMinus,

    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,

    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::IntLit(v) => write!(f, "integer literal {v}"),
            Tok::StrLit(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", other.spelling()),
        }
    }
}

impl Tok {
    /// Canonical spelling of punctuation tokens (diagnostics).
    pub fn spelling(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Bang => "!",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::AmpAssign => "&=",
            Tok::PipeAssign => "|=",
            Tok::CaretAssign => "^=",
            Tok::ShlAssign => "<<=",
            Tok::ShrAssign => ">>=",
            Tok::Eq => "==",
            Tok::Ne => "!=",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            _ => "?",
        }
    }
}
