//! AST pretty-printer.
//!
//! Renders a parsed translation unit back to MiniC source. The printer's
//! contract, checked by property tests, is *round-trip stability*:
//! `parse(print(parse(src)))` equals `parse(src)`. This pins down the
//! parser's precedence and associativity decisions and gives diagnostics
//! a way to quote reconstructed code.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a translation unit as MiniC source.
pub fn print_unit(unit: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for item in &unit.items {
        p.item(item);
    }
    p.out
}

/// Renders a single expression (diagnostics).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(e);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent -= 1;
        self.line(text);
    }

    // ------------------------------------------------------------------
    // Types and declarators.
    // ------------------------------------------------------------------

    fn type_str(ty: &TypeExpr) -> String {
        match ty {
            TypeExpr::Void => "void".into(),
            TypeExpr::Int { width, signed } => match (width, signed) {
                (1, true) => "char".into(),
                (1, false) => "unsigned char".into(),
                (2, true) => "short".into(),
                (2, false) => "unsigned short".into(),
                (4, true) => "int".into(),
                (4, false) => "unsigned int".into(),
                (8, true) => "long".into(),
                (8, false) => "unsigned long".into(),
                _ => unreachable!("parser emits only 1/2/4/8"),
            },
            TypeExpr::Struct(name) => format!("struct {name}"),
            TypeExpr::Ptr(inner) => format!("{}*", Self::type_str(inner)),
        }
    }

    fn declarator_str(&mut self, d: &Declarator) -> String {
        let mut s = format!("{} {}", Self::type_str(&d.ty), d.name);
        for dim in &d.array_dims {
            if *dim == 0 {
                s.push_str("[]");
            } else {
                let _ = write!(s, "[{dim}]");
            }
        }
        match &d.init {
            None => {}
            Some(Initializer::Expr(e)) => {
                s.push_str(" = ");
                s.push_str(&expr_str(e, 2));
            }
            Some(Initializer::List(items)) => {
                s.push_str(" = {");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&expr_str(item, 2));
                }
                s.push('}');
            }
        }
        s
    }

    // ------------------------------------------------------------------
    // Items and statements.
    // ------------------------------------------------------------------

    fn item(&mut self, item: &Item) {
        match item {
            Item::Struct(s) => {
                self.open(&format!("struct {} {{", s.name));
                for f in &s.fields {
                    let mut line = format!("{} {}", Self::type_str(&f.ty), f.name);
                    for dim in &f.array_dims {
                        let _ = write!(line, "[{dim}]");
                    }
                    line.push(';');
                    self.line(&line);
                }
                self.close("};");
            }
            Item::Global(decls) => {
                for d in decls {
                    let s = format!("{};", self.declarator_str(d));
                    self.line(&s);
                }
            }
            Item::Func(f) => {
                let params: Vec<String> = f
                    .params
                    .iter()
                    .map(|p| format!("{} {}", Self::type_str(&p.ty), p.name))
                    .collect();
                self.open(&format!(
                    "{} {}({}) {{",
                    Self::type_str(&f.ret),
                    f.name,
                    params.join(", ")
                ));
                for s in &f.body {
                    self.stmt(s);
                }
                self.close("}");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Empty => self.line(";"),
            Stmt::Expr(e) => {
                let s = format!("{};", expr_str(e, 0));
                self.line(&s);
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    let s = format!("{};", self.declarator_str(d));
                    self.line(&s);
                }
            }
            Stmt::Block(stmts) => {
                self.open("{");
                for s in stmts {
                    self.stmt(s);
                }
                self.close("}");
            }
            Stmt::If { cond, then, els } => {
                self.open(&format!("if ({}) {{", expr_str(cond, 0)));
                self.stmt_body(then);
                match els {
                    None => self.close("}"),
                    Some(els) => {
                        self.close("} else {");
                        self.indent += 1;
                        self.stmt_body(els);
                        self.close("}");
                    }
                }
            }
            Stmt::While { cond, body } => {
                self.open(&format!("while ({}) {{", expr_str(cond, 0)));
                self.stmt_body(body);
                self.close("}");
            }
            Stmt::DoWhile { body, cond } => {
                self.open("do {");
                self.stmt_body(body);
                self.close(&format!("}} while ({});", expr_str(cond, 0)));
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The init may be a declaration; print it inline.
                let init_s = match init.as_deref() {
                    None => String::new(),
                    Some(Stmt::Expr(e)) => expr_str(e, 0),
                    Some(Stmt::Decl(decls)) if decls.len() == 1 => self.declarator_str(&decls[0]),
                    Some(other) => {
                        // Rare shape: hoist it before the loop.
                        self.stmt(other);
                        String::new()
                    }
                };
                let cond_s = cond.as_ref().map(|c| expr_str(c, 0)).unwrap_or_default();
                let step_s = step.as_ref().map(|s| expr_str(s, 0)).unwrap_or_default();
                self.open(&format!("for ({init_s}; {cond_s}; {step_s}) {{"));
                self.stmt_body(body);
                self.close("}");
            }
            Stmt::Switch { scrutinee, body } => {
                self.open(&format!("switch ({}) {{", expr_str(scrutinee, 0)));
                for s in body {
                    self.stmt(s);
                }
                self.close("}");
            }
            Stmt::Case(v, _) => self.line(&format!("case {v}:")),
            Stmt::Default(_) => self.line("default:"),
            Stmt::Break(_) => self.line("break;"),
            Stmt::Continue(_) => self.line("continue;"),
            Stmt::Return(None, _) => self.line("return;"),
            Stmt::Return(Some(e), _) => {
                let s = format!("return {};", expr_str(e, 0));
                self.line(&s);
            }
            Stmt::Label(name, _) => self.line(&format!("{name}:")),
            Stmt::Goto(name, _) => self.line(&format!("goto {name};")),
        }
    }

    fn stmt_body(&mut self, s: &Stmt) {
        match s {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            other => self.stmt(other),
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = expr_str(e, 0);
        self.out.push_str(&s);
    }
}

/// Precedence levels used to decide parenthesisation. Higher binds
/// tighter; mirrors the parser's table.
fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        LogicalOr => 1,
        LogicalAnd => 2,
        Or => 3,
        Xor => 4,
        And => 5,
        Eq | Ne => 6,
        Lt | Gt | Le | Ge => 7,
        Shl | Shr => 8,
        Add | Sub => 9,
        Mul | Div | Rem => 10,
    }
}

fn bin_token(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        And => "&",
        Or => "|",
        Xor => "^",
        Shl => "<<",
        Shr => ">>",
        Eq => "==",
        Ne => "!=",
        Lt => "<",
        Gt => ">",
        Le => "<=",
        Ge => ">=",
        LogicalAnd => "&&",
        LogicalOr => "||",
    }
}

/// Renders an expression, parenthesising when the context binds at least
/// as tightly as `min_prec` requires.
fn expr_str(e: &Expr, min_prec: u8) -> String {
    // Precedence classes: 0 = comma, 2 = assignment, 3 = conditional,
    // 4.. = binary (offset by +3 over `bin_prec`), 15 = unary, 16 = postfix.
    match e {
        Expr::IntLit(v, _) => format!("{v}"),
        Expr::StrLit(bytes, _) => {
            let mut s = String::from("\"");
            for &b in bytes {
                match b {
                    b'"' => s.push_str("\\\""),
                    b'\\' => s.push_str("\\\\"),
                    b'\n' => s.push_str("\\n"),
                    b'\t' => s.push_str("\\t"),
                    b'\r' => s.push_str("\\r"),
                    0x20..=0x7E => s.push(b as char),
                    other => {
                        let _ = write!(s, "\\x{other:02x}");
                    }
                }
            }
            s.push('"');
            s
        }
        Expr::Ident(name, _) => name.clone(),
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = bin_prec(*op) + 3;
            let s = format!(
                "{} {} {}",
                expr_str(lhs, prec),
                bin_token(*op),
                expr_str(rhs, prec + 1)
            );
            parens_if(s, prec < min_prec)
        }
        Expr::Unary { op, operand, .. } => {
            let t = match op {
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
                UnOp::Not => "!",
            };
            let s = format!("{t}{}", expr_str(operand, 15));
            parens_if(s, 15 < min_prec)
        }
        Expr::Deref(inner, _) => parens_if(format!("*{}", expr_str(inner, 15)), 15 < min_prec),
        Expr::AddrOf(inner, _) => parens_if(format!("&{}", expr_str(inner, 15)), 15 < min_prec),
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", expr_str(base, 16), expr_str(index, 0))
        }
        Expr::Member {
            base, field, arrow, ..
        } => format!(
            "{}{}{}",
            expr_str(base, 16),
            if *arrow { "->" } else { "." },
            field
        ),
        Expr::Call { callee, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(a, 2)).collect();
            format!("{callee}({})", args.join(", "))
        }
        Expr::Assign { lhs, rhs, .. } => {
            let s = format!("{} = {}", expr_str(lhs, 3), expr_str(rhs, 2));
            parens_if(s, 2 < min_prec)
        }
        Expr::OpAssign { op, lhs, rhs, .. } => {
            let s = format!(
                "{} {}= {}",
                expr_str(lhs, 3),
                bin_token(*op),
                expr_str(rhs, 2)
            );
            parens_if(s, 2 < min_prec)
        }
        Expr::IncDec {
            target,
            inc,
            prefix,
            ..
        } => {
            let t = if *inc { "++" } else { "--" };
            let s = if *prefix {
                format!("{t}{}", expr_str(target, 15))
            } else {
                format!("{}{t}", expr_str(target, 16))
            };
            parens_if(s, 15 < min_prec)
        }
        Expr::Conditional {
            cond, then, els, ..
        } => {
            let s = format!(
                "{} ? {} : {}",
                expr_str(cond, 4),
                expr_str(then, 0),
                expr_str(els, 2)
            );
            parens_if(s, 3 < min_prec)
        }
        Expr::Cast { ty, expr, .. } => {
            let s = format!("({}) {}", Printer::type_str(ty), expr_str(expr, 15));
            parens_if(s, 15 < min_prec)
        }
        Expr::SizeofType(ty, _) => format!("sizeof({})", Printer::type_str(ty)),
        Expr::SizeofExpr(inner, _) => format!("sizeof({})", expr_str(inner, 0)),
        Expr::Comma { lhs, rhs, .. } => {
            let s = format!("{}, {}", expr_str(lhs, 2), expr_str(rhs, 2));
            parens_if(s, 1 < min_prec)
        }
    }
}

fn parens_if(s: String, yes: bool) -> String {
    if yes {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips positions so round-trip comparison ignores layout.
    fn normalize(unit: &TranslationUnit) -> String {
        // Debug output includes `Pos`; easier to compare re-printed text.
        print_unit(unit)
    }

    fn round_trip(src: &str) {
        let first = parse(src).expect("initial parse");
        let printed = print_unit(&first);
        let second =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(
            normalize(&first),
            normalize(&second),
            "round trip diverged for:\n{src}\nprinted:\n{printed}"
        );
    }

    #[test]
    fn round_trips_basic_constructs() {
        round_trip("int main() { return 1 + 2 * 3; }");
        round_trip("int f(int a, char *b) { return a + *b; }");
        round_trip("char tab[4] = \"ab\"; char *msg = \"hi\\n\"; int xs[3] = {1, 2, 3};");
        round_trip(
            "struct pt { int x; int y; char name[8]; };\n\
             int g(struct pt *p) { return p->x + p->y; }",
        );
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "int f(int n) {\n\
               int acc = 0;\n\
               for (int i = 0; i < n; i++) { if (i % 2) acc += i; else acc -= i; }\n\
               while (acc > 10) acc /= 2;\n\
               do acc++; while (acc < 3);\n\
               switch (acc) { case 1: return 1; default: break; }\n\
               again: if (acc) goto again;\n\
               return acc;\n\
             }",
        );
    }

    #[test]
    fn round_trips_tricky_precedence() {
        round_trip("int f(int a, int b, int c) { return a - (b - c); }");
        round_trip("int f(int a, int b) { return (a + b) * (a - b); }");
        round_trip("int f(int a) { return -(a + 1); }");
        round_trip("int f(int a, int b) { return a & b | a ^ b; }");
        round_trip("int f(int a) { return (a << 2) < 3; }");
        round_trip("int f(int *p) { return (*p)++ + *p++; }");
        round_trip("int f(int a, int b, int c) { return a ? b : c ? a : b; }");
        round_trip("int f(int a) { int b; b = (a = 2, a + 1); return b; }");
        round_trip("long f(char *p) { return (long) (unsigned char) *p; }");
    }

    #[test]
    fn round_trips_figure1() {
        // The full Mutt source (which embeds Figure 1) must survive a
        // print/reparse cycle.
        let src = r#"
            char B64Chars[64] =
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,";
            char *utf8_to_utf7(char *u8, size_t u8len) {
                char *buf; char *p;
                int ch; int n; int i; int b = 0; int k = 0; int base64 = 0;
                p = buf = (char *) malloc(u8len * 2 + 1);
                while (u8len) {
                    unsigned char c = *u8;
                    if (c < 0x80) ch = c, n = 0;
                    else if (c < 0xc2) goto bail;
                    else ch = c & 0x1f, n = 1;
                    u8++; u8len--;
                    if (n > u8len) goto bail;
                    for (i = 0; i < n; i++) {
                        if ((u8[i] & 0xc0) != 0x80) goto bail;
                        ch = (ch << 6) | (u8[i] & 0x3f);
                    }
                    u8 += n; u8len -= n;
                    *p++ = ch;
                }
                *p++ = '\0';
                return buf;
            bail:
                free(buf);
                return 0;
            }
        "#;
        round_trip(src);
    }

    #[test]
    fn printed_programs_execute_identically() {
        // Semantic round trip: the printed source compiles and produces
        // the same result.
        let src = "int main() {\n\
                     int xs[8]; int i; int acc = 0;\n\
                     for (i = 0; i < 8; i++) xs[i] = i * i - 3;\n\
                     for (i = 0; i < 8; i++) acc = acc * 2 + xs[i] % 5;\n\
                     return acc & 0xFFFF;\n\
                   }";
        let unit = parse(src).unwrap();
        let printed = print_unit(&unit);
        let a = crate::frontend(src).unwrap();
        let b = crate::frontend(&printed).unwrap();
        // Compare the HIR bodies structurally.
        assert_eq!(format!("{:?}", a.funcs), format!("{:?}", b.funcs));
    }

    #[test]
    fn string_escapes_survive() {
        round_trip(r#"char *s = "tab\t nl\n quote\" backslash\\ hex\xff";"#);
    }
}
