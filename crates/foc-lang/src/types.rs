//! The MiniC type system.

use std::fmt;

/// Width of an integer type, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntWidth {
    /// `char`.
    W1,
    /// `short`.
    W2,
    /// `int`.
    W4,
    /// `long` (also pointers' width).
    W8,
}

impl IntWidth {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            IntWidth::W1 => 1,
            IntWidth::W2 => 2,
            IntWidth::W4 => 4,
            IntWidth::W8 => 8,
        }
    }

    /// Width from a byte count.
    ///
    /// # Panics
    ///
    /// Panics on byte counts other than 1, 2, 4, 8.
    pub fn from_bytes(bytes: u8) -> IntWidth {
        match bytes {
            1 => IntWidth::W1,
            2 => IntWidth::W2,
            4 => IntWidth::W4,
            8 => IntWidth::W8,
            other => panic!("bad integer width: {other}"),
        }
    }
}

/// Identifier of a struct definition within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructId(pub u32);

/// A resolved MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` (function returns and `void*` pointees only).
    Void,
    /// An integer type.
    Int {
        /// Width in bytes.
        width: IntWidth,
        /// Signedness. `char` is signed.
        signed: bool,
    },
    /// Pointer to a type.
    Ptr(Box<CType>),
    /// Fixed-size array.
    Array(Box<CType>, u64),
    /// A struct by id (layout lives in the program's struct table).
    Struct(StructId),
}

impl CType {
    /// `char`.
    pub const CHAR: CType = CType::Int {
        width: IntWidth::W1,
        signed: true,
    };
    /// `unsigned char`.
    pub const UCHAR: CType = CType::Int {
        width: IntWidth::W1,
        signed: false,
    };
    /// `int`.
    pub const INT: CType = CType::Int {
        width: IntWidth::W4,
        signed: true,
    };
    /// `unsigned int`.
    pub const UINT: CType = CType::Int {
        width: IntWidth::W4,
        signed: false,
    };
    /// `long`.
    pub const LONG: CType = CType::Int {
        width: IntWidth::W8,
        signed: true,
    };
    /// `unsigned long` / `size_t`.
    pub const ULONG: CType = CType::Int {
        width: IntWidth::W8,
        signed: false,
    };

    /// `char*`.
    pub fn char_ptr() -> CType {
        CType::Ptr(Box::new(CType::CHAR))
    }

    /// `void*`.
    pub fn void_ptr() -> CType {
        CType::Ptr(Box::new(CType::Void))
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int { .. })
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// Whether this is an integer or pointer (usable in conditions and
    /// scalar assignment).
    pub fn is_scalar(&self) -> bool {
        self.is_integer() || self.is_pointer()
    }

    /// For pointers and arrays, the element/pointee type.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) => Some(t),
            CType::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Signedness of integer types (pointers behave as unsigned).
    pub fn is_signed(&self) -> bool {
        matches!(self, CType::Int { signed: true, .. })
    }

    /// The array-to-pointer decayed version of this type.
    pub fn decayed(&self) -> CType {
        match self {
            CType::Array(elem, _) => CType::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Int { width, signed } => {
                let name = match (width, signed) {
                    (IntWidth::W1, true) => "char",
                    (IntWidth::W1, false) => "unsigned char",
                    (IntWidth::W2, true) => "short",
                    (IntWidth::W2, false) => "unsigned short",
                    (IntWidth::W4, true) => "int",
                    (IntWidth::W4, false) => "unsigned int",
                    (IntWidth::W8, true) => "long",
                    (IntWidth::W8, false) => "unsigned long",
                };
                write!(f, "{name}")
            }
            CType::Ptr(t) => write!(f, "{t}*"),
            CType::Array(t, n) => write!(f, "{t}[{n}]"),
            CType::Struct(id) => write!(f, "struct#{}", id.0),
        }
    }
}

/// A struct field with resolved layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: CType,
    /// Byte offset from the struct base.
    pub offset: u64,
}

/// A struct with computed size and alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order with offsets.
    pub fields: Vec<FieldLayout>,
    /// Total size in bytes (padded to alignment).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

impl StructLayout {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Size/alignment oracle: resolves struct ids against a layout table.
#[derive(Debug, Clone, Default)]
pub struct Layouts {
    /// Struct layouts indexed by [`StructId`].
    pub structs: Vec<StructLayout>,
}

impl Layouts {
    /// Size of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on `void` (which has no size) and unknown struct ids.
    pub fn size_of(&self, ty: &CType) -> u64 {
        match ty {
            CType::Void => panic!("void has no size"),
            CType::Int { width, .. } => width.bytes(),
            CType::Ptr(_) => 8,
            CType::Array(elem, n) => self.size_of(elem) * n,
            CType::Struct(id) => self.structs[id.0 as usize].size,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, ty: &CType) -> u64 {
        match ty {
            CType::Void => 1,
            CType::Int { width, .. } => width.bytes(),
            CType::Ptr(_) => 8,
            CType::Array(elem, _) => self.align_of(elem),
            CType::Struct(id) => self.structs[id.0 as usize].align,
        }
    }

    /// Layout for a struct id.
    pub fn layout(&self, id: StructId) -> &StructLayout {
        &self.structs[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(CType::CHAR.to_string(), "char");
        assert_eq!(CType::UCHAR.to_string(), "unsigned char");
        assert_eq!(CType::char_ptr().to_string(), "char*");
        assert_eq!(CType::Array(Box::new(CType::INT), 4).to_string(), "int[4]");
    }

    #[test]
    fn decay_turns_arrays_into_pointers() {
        let arr = CType::Array(Box::new(CType::CHAR), 10);
        assert_eq!(arr.decayed(), CType::char_ptr());
        assert_eq!(CType::INT.decayed(), CType::INT);
    }

    #[test]
    fn sizes_and_alignment() {
        let layouts = Layouts {
            structs: vec![StructLayout {
                name: "pair".into(),
                fields: vec![
                    FieldLayout {
                        name: "a".into(),
                        ty: CType::CHAR,
                        offset: 0,
                    },
                    FieldLayout {
                        name: "b".into(),
                        ty: CType::LONG,
                        offset: 8,
                    },
                ],
                size: 16,
                align: 8,
            }],
        };
        assert_eq!(layouts.size_of(&CType::INT), 4);
        assert_eq!(layouts.size_of(&CType::char_ptr()), 8);
        assert_eq!(layouts.size_of(&CType::Array(Box::new(CType::INT), 5)), 20);
        assert_eq!(layouts.size_of(&CType::Struct(StructId(0))), 16);
        assert_eq!(layouts.align_of(&CType::Struct(StructId(0))), 8);
        assert_eq!(layouts.align_of(&CType::Array(Box::new(CType::LONG), 2)), 8);
    }
}
