//! Typed, resolved intermediate representation.
//!
//! [`crate::sema`] lowers the AST into this form: every expression carries
//! its type, identifiers are resolved to slots, implicit conversions are
//! explicit [`Expr::Cast`] nodes, array indexing and member access are
//! lowered to pointer arithmetic, and lvalues are explicit address
//! expressions. The `foc-compiler` crate lowers this directly to bytecode.

use crate::types::{CType, Layouts};

/// Index of a function in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Index of a global in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Index of a local slot within a function (parameters first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Index of an interned string literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Index of a label within a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(pub u32);

/// Builtin runtime functions provided by the VM (the libc shim layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    Malloc,
    Free,
    Realloc,
    Strlen,
    Strcpy,
    Strncpy,
    Strcat,
    Strncat,
    Strcmp,
    Strncmp,
    Strchr,
    Strrchr,
    Memcpy,
    Memmove,
    Memset,
    Memcmp,
    /// `print_str(char*)`: writes a NUL-terminated string to the output.
    PrintStr,
    /// `print_int(long)`: writes a decimal integer to the output.
    PrintInt,
    /// `putchar(int)`.
    Putchar,
    /// `abort(void)`: terminates the program abnormally.
    Abort,
    /// `exit(int)`.
    Exit,
    Isspace,
    Isdigit,
    Isalpha,
    Isprint,
    Toupper,
    Tolower,
    Atoi,
    /// `read_input(char* buf, long cap) -> long`: reads the next request
    /// chunk from the driver-supplied input stream; returns bytes read.
    ReadInput,
    /// `emit_output(char* buf, long len)`: appends raw bytes to the output
    /// sink (binary-safe `write`).
    EmitOutput,
    /// `io_wait(long bytes)`: models blocking I/O of `bytes` bytes; adds
    /// I/O time to the virtual clock without touching guest memory.
    IoWait,
}

impl Builtin {
    /// Resolves a callee name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "malloc" => Builtin::Malloc,
            "free" => Builtin::Free,
            "realloc" => Builtin::Realloc,
            "strlen" => Builtin::Strlen,
            "strcpy" => Builtin::Strcpy,
            "strncpy" => Builtin::Strncpy,
            "strcat" => Builtin::Strcat,
            "strncat" => Builtin::Strncat,
            "strcmp" => Builtin::Strcmp,
            "strncmp" => Builtin::Strncmp,
            "strchr" => Builtin::Strchr,
            "strrchr" => Builtin::Strrchr,
            "memcpy" => Builtin::Memcpy,
            "memmove" => Builtin::Memmove,
            "memset" => Builtin::Memset,
            "memcmp" => Builtin::Memcmp,
            "print_str" => Builtin::PrintStr,
            "print_int" => Builtin::PrintInt,
            "putchar" => Builtin::Putchar,
            "abort" => Builtin::Abort,
            "exit" => Builtin::Exit,
            "isspace" => Builtin::Isspace,
            "isdigit" => Builtin::Isdigit,
            "isalpha" => Builtin::Isalpha,
            "isprint" => Builtin::Isprint,
            "toupper" => Builtin::Toupper,
            "tolower" => Builtin::Tolower,
            "atoi" => Builtin::Atoi,
            "read_input" => Builtin::ReadInput,
            "emit_output" => Builtin::EmitOutput,
            "io_wait" => Builtin::IoWait,
            _ => return None,
        })
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Abort => 0,
            Builtin::Malloc
            | Builtin::Free
            | Builtin::Strlen
            | Builtin::PrintStr
            | Builtin::PrintInt
            | Builtin::Putchar
            | Builtin::Exit
            | Builtin::Isspace
            | Builtin::Isdigit
            | Builtin::Isalpha
            | Builtin::Isprint
            | Builtin::Toupper
            | Builtin::Tolower
            | Builtin::Atoi
            | Builtin::IoWait => 1,
            Builtin::Realloc
            | Builtin::Strcpy
            | Builtin::Strcat
            | Builtin::Strcmp
            | Builtin::Strchr
            | Builtin::Strrchr
            | Builtin::ReadInput
            | Builtin::EmitOutput => 2,
            Builtin::Strncpy
            | Builtin::Strncat
            | Builtin::Strncmp
            | Builtin::Memcpy
            | Builtin::Memmove
            | Builtin::Memset
            | Builtin::Memcmp => 3,
        }
    }

    /// Whether the builtin returns a value (all do except the `void` ones).
    pub fn returns_value(self) -> bool {
        !matches!(
            self,
            Builtin::Free
                | Builtin::PrintStr
                | Builtin::PrintInt
                | Builtin::Abort
                | Builtin::Exit
                | Builtin::EmitOutput
                | Builtin::IoWait
        )
    }
}

/// Binary operators on values (all operate on the canonical `i64`
/// representation; signedness is resolved at lowering time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division.
    DivS,
    /// Unsigned division.
    DivU,
    /// Signed remainder.
    RemS,
    /// Unsigned remainder.
    RemU,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right.
    ShrS,
    /// Logical shift right.
    ShrU,
    Eq,
    Ne,
    /// Signed comparisons.
    LtS,
    LeS,
    GtS,
    GeS,
    /// Unsigned comparisons (also pointers).
    LtU,
    LeU,
    GtU,
    GeU,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    BitNot,
    /// Logical not: yields 0 or 1.
    Not,
}

/// Who a call targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// A user-defined MiniC function.
    Func(FuncId),
    /// A VM builtin.
    Builtin(Builtin),
}

/// Typed expressions. Every node knows its result type via [`Expr::ty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer constant (already in canonical representation for its type).
    Const(i64, CType),
    /// Address of an interned string literal (`char*`).
    Str(StrId),
    /// Address of a local slot (`T*` where `T` is the slot type).
    LocalAddr(LocalId, CType),
    /// Address of a global (`T*`).
    GlobalAddr(GlobalId, CType),
    /// Scalar load from an address.
    Load {
        /// Address to load from.
        addr: Box<Expr>,
        /// Scalar type loaded.
        ty: CType,
    },
    /// Scalar store; evaluates to the stored value.
    Store {
        /// Address to store to.
        addr: Box<Expr>,
        /// Value to store.
        value: Box<Expr>,
        /// Scalar type stored.
        ty: CType,
    },
    /// Arithmetic/logical operation on values.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        /// Result type (conversions applied by sema).
        ty: CType,
    },
    /// Unary operation.
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        ty: CType,
    },
    /// Conversion between scalar types (truncation / extension /
    /// pointer-integer bridging).
    Cast {
        expr: Box<Expr>,
        from: CType,
        to: CType,
    },
    /// Checked pointer arithmetic: `ptr + count * elem_size` bytes.
    PtrAdd {
        ptr: Box<Expr>,
        /// Element count (may be negative).
        count: Box<Expr>,
        /// Element size in bytes.
        elem_size: u64,
        /// Result pointer type.
        ty: CType,
    },
    /// Pointer difference in elements: `(lhs - rhs) / elem_size`.
    PtrDiff {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        elem_size: u64,
    },
    /// Call a function or builtin.
    Call {
        callee: Callee,
        args: Vec<Expr>,
        /// Result type (`void` calls yield a dummy 0 in value position).
        ty: CType,
    },
    /// Short-circuit `&&` / `||`, yielding 0 or 1.
    ShortCircuit {
        and: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? then : els` with lazy evaluation.
    Conditional {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
        ty: CType,
    },
    /// Evaluate `effects` for side effects, then yield `result`.
    Comma {
        effects: Box<Expr>,
        result: Box<Expr>,
    },
    /// Pre/post increment/decrement of a scalar lvalue.
    IncDec {
        /// Address of the lvalue.
        addr: Box<Expr>,
        /// Scalar type of the lvalue.
        ty: CType,
        /// Byte delta (±1 for integers, ±elem_size handled via `ptr`).
        delta: i64,
        /// Whether the result is the new value (prefix) or old (postfix).
        prefix: bool,
        /// Whether this is pointer arithmetic (use checked PtrAdd).
        ptr: bool,
    },
}

impl Expr {
    /// The expression's result type.
    pub fn ty(&self) -> CType {
        match self {
            Expr::Const(_, t) => t.clone(),
            Expr::Str(_) => CType::char_ptr(),
            Expr::LocalAddr(_, t) | Expr::GlobalAddr(_, t) => CType::Ptr(Box::new(t.clone())),
            Expr::Load { ty, .. } => ty.clone(),
            Expr::Store { ty, .. } => ty.clone(),
            Expr::Binary { ty, .. } => ty.clone(),
            Expr::Unary { ty, .. } => ty.clone(),
            Expr::Cast { to, .. } => to.clone(),
            Expr::PtrAdd { ty, .. } => ty.clone(),
            Expr::PtrDiff { .. } => CType::LONG,
            Expr::Call { ty, .. } => ty.clone(),
            Expr::ShortCircuit { .. } => CType::INT,
            Expr::Conditional { ty, .. } => ty.clone(),
            Expr::Comma { result, .. } => result.ty(),
            Expr::IncDec { ty, .. } => ty.clone(),
        }
    }
}

/// Typed statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Evaluate for side effects.
    Expr(Expr),
    /// `if`.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `while` / `for` normalised: `for` becomes init + While with step.
    While {
        cond: Expr,
        body: Vec<Stmt>,
        /// Step expression executed at `continue` and end of body.
        step: Option<Expr>,
    },
    /// `do { } while`.
    DoWhile { body: Vec<Stmt>, cond: Expr },
    /// `break` out of the innermost loop.
    Break,
    /// `continue` the innermost loop.
    Continue,
    /// Return (with value unless the function is `void`).
    Return(Option<Expr>),
    /// Label target.
    Label(LabelId),
    /// Unconditional jump.
    Goto(LabelId),
    /// Conditional jump used by lowered `switch`: `if (scrutinee == value)
    /// goto label`.
    GotoIf { cond: Expr, target: LabelId },
}

/// A local variable slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSlot {
    /// Declared name (for diagnostics).
    pub name: String,
    /// Declared type (arrays kept as arrays; they are addressable units).
    pub ty: CType,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Number of leading slots that are parameters.
    pub param_count: usize,
    /// All local slots (parameters first).
    pub locals: Vec<LocalSlot>,
    /// Return type.
    pub ret: CType,
    /// Body.
    pub body: Vec<Stmt>,
    /// Number of labels used by the body.
    pub label_count: u32,
}

/// A global definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Type (arrays kept as arrays).
    pub ty: CType,
    /// Initial bytes (little-endian scalars / array contents); shorter
    /// than the type's size means the rest is zero.
    pub init: Vec<u8>,
    /// String relocations: at byte `offset`, the loader patches in the
    /// 8-byte address of the interned string (`char *p = "...";`).
    pub relocs: Vec<(u64, StrId)>,
}

/// A type-checked program ready for lowering.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Struct layouts (the [`Layouts`] oracle).
    pub layouts: Layouts,
    /// Globals in declaration order.
    pub globals: Vec<Global>,
    /// Interned string literals (NUL terminator included).
    pub strings: Vec<Vec<u8>>,
    /// Functions.
    pub funcs: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}
