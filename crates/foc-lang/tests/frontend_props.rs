//! Property tests for the front end: the parser must never panic on
//! arbitrary input, and generated well-formed programs must round-trip
//! through the pretty-printer and type-check deterministically.

use proptest::prelude::*;

use foc_lang::parser::parse;
use foc_lang::pretty::print_unit;

/// Strategy: arbitrary byte soup rendered as a string — the parser must
/// reject or accept without panicking.
fn arbitrary_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("int".to_string()),
            Just("char".to_string()),
            Just("struct".to_string()),
            Just("if".to_string()),
            Just("while".to_string()),
            Just("return".to_string()),
            Just("sizeof".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just(";".to_string()),
            Just(",".to_string()),
            Just("*".to_string()),
            Just("&".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just("->".to_string()),
            Just("...".to_string()),
            Just("\"str\"".to_string()),
            Just("'c'".to_string()),
            Just("0x1F".to_string()),
            "[a-z]{1,6}",
            "[0-9]{1,6}",
        ],
        0..60,
    )
    .prop_map(|tokens| tokens.join(" "))
}

/// Strategy: a small well-formed arithmetic program.
fn well_formed_program() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        (0i64..1000).prop_map(|v| v.to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
    ];
    let op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("|"),
        Just("&"),
        Just("^"),
        Just("<<"),
        Just("=="),
        Just("<"),
    ];
    proptest::collection::vec((expr.clone(), op, expr), 1..12).prop_map(|terms| {
        let mut body = String::from("int f(int a, int b) { int acc = 0;\n");
        for (l, o, r) in terms {
            body.push_str(&format!("acc = acc + ({l} {o} {r});\n"));
        }
        body.push_str("return acc; }");
        body
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(src in arbitrary_source()) {
        let _ = parse(&src); // must not panic, Ok or Err both fine
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0x20u8..0x7F, 0..200)) {
        let src = String::from_utf8(bytes).unwrap();
        let _ = foc_lang::Lexer::new(&src).tokenize();
    }

    #[test]
    fn well_formed_programs_round_trip(src in well_formed_program()) {
        let first = parse(&src).expect("well-formed program parses");
        let printed = print_unit(&first);
        let second = parse(&printed).expect("printed program reparses");
        prop_assert_eq!(print_unit(&first), print_unit(&second));
        // And both type-check to the same HIR.
        let a = foc_lang::frontend(&src).expect("type checks");
        let b = foc_lang::frontend(&printed).expect("printed type checks");
        prop_assert_eq!(format!("{:?}", a.funcs), format!("{:?}", b.funcs));
    }

    #[test]
    fn sema_never_panics_on_parsed_soup(src in arbitrary_source()) {
        if let Ok(unit) = parse(&src) {
            let _ = foc_lang::analyze(&unit); // Ok or Err, no panic
        }
    }
}
