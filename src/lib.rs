//! # failure-oblivious
//!
//! A from-scratch reproduction of *Enhancing Server Availability and
//! Security Through Failure-Oblivious Computing* (Rinard, Cadar, Dumitran,
//! Roy, Leu, Beebee — OSDI 2004).
//!
//! Failure-oblivious computing makes programs continue executing through
//! memory errors without memory corruption: a bounds-checking compiler
//! detects invalid accesses, but instead of terminating, the generated
//! code **discards invalid writes** and **manufactures values for invalid
//! reads**. This crate ships the whole system the paper describes — built
//! on a simulated substrate, since the original depends on GCC, CRED, and
//! five real Unix servers:
//!
//! * [`lang`] — MiniC, a C subset rich enough to express the paper's
//!   vulnerable code verbatim (Figure 1 compiles essentially unmodified);
//! * [`compiler`] — a bytecode compiler whose memory instructions are the
//!   instrumentation points of the Jones & Kelly / CRED checking scheme;
//! * [`memory`] — the runtime: object table (splay tree), out-of-bounds
//!   descriptor registry, and the access policies
//!   ([`Mode::Standard`], [`Mode::BoundsCheck`], [`Mode::FailureOblivious`],
//!   plus the §5.1 variants [`Mode::Boundless`] and [`Mode::Redirect`]);
//! * [`vm`] — the execution engine with libc shims and a virtual clock;
//! * [`servers`] — Pine, Apache, Sendmail, Midnight Commander, and Mutt
//!   re-implemented with their documented memory errors, plus request
//!   drivers.
//!
//! ## Quickstart
//!
//! ```
//! use failure_oblivious::{run, Mode};
//!
//! // A classic off-by-N overflow: writes past an 8-byte buffer.
//! let src = r#"
//!     int main() {
//!         int i;
//!         char buf[8];
//!         for (i = 0; i < 16; i++) buf[i] = 'A';
//!         return 7;
//!     }
//! "#;
//!
//! // The Bounds Check compiler terminates at the first invalid write...
//! assert!(run(src, Mode::BoundsCheck).is_err());
//! // ...the failure-oblivious compiler discards it and continues.
//! assert_eq!(run(src, Mode::FailureOblivious).unwrap(), 7);
//! ```

pub use foc_compiler as compiler;
pub use foc_lang as lang;
pub use foc_memory as memory;
pub use foc_servers as servers;
pub use foc_vm as vm;

pub use foc_memory::{MemConfig, Mode, ValueSequence};
pub use foc_vm::{Machine, MachineConfig, VmFault};

/// Compiles MiniC source and runs its `main` function under the given
/// access policy, returning `main`'s return value.
///
/// This is the one-line entry point; build a [`Machine`] directly for
/// persistent state, input/output, or custom configuration.
pub fn run(source: &str, mode: Mode) -> Result<i64, RunError> {
    let mut machine =
        Machine::from_source(source, MachineConfig::with_mode(mode)).map_err(RunError::Build)?;
    machine.call("main", &[]).map_err(RunError::Fault)
}

/// Failure of [`run`].
#[derive(Debug)]
pub enum RunError {
    /// The source failed to compile or load.
    Build(String),
    /// Execution faulted (includes `exit`/`abort`).
    Fault(VmFault),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Build(e) => write!(f, "build error: {e}"),
            RunError::Fault(e) => write!(f, "runtime fault: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_main() {
        assert_eq!(
            run("int main() { return 41 + 1; }", Mode::Standard).unwrap(),
            42
        );
    }

    #[test]
    fn run_reports_build_errors() {
        assert!(matches!(
            run("int main( {", Mode::Standard),
            Err(RunError::Build(_))
        ));
    }

    #[test]
    fn modes_differ_on_overflow() {
        let src = "int main() { int i; char b[4]; for (i = 0; i < 12; i++) b[i] = 1; return 5; }";
        assert!(run(src, Mode::BoundsCheck).is_err());
        assert_eq!(run(src, Mode::FailureOblivious).unwrap(), 5);
        assert_eq!(run(src, Mode::Boundless).unwrap(), 5);
        assert_eq!(run(src, Mode::Redirect).unwrap(), 5);
    }
}
