//! Why the manufactured-value sequence matters (§3): Midnight Commander's
//! `'/'` scan loop under three different read-continuation strategies.
//!
//! "Midnight Commander contains a loop that, for some inputs, searches
//! past the end of a buffer looking for the '/' character. If the
//! sequence of generated values does not include this character, the loop
//! never terminates and Midnight Commander hangs."
//!
//! ```text
//! cargo run --example manufactured_values
//! ```

use failure_oblivious::memory::{Mode, ValueSequence};
use failure_oblivious::servers::mc::MC_SOURCE;
use failure_oblivious::{Machine, MachineConfig, VmFault};

fn main() {
    let strategies = [
        (
            "cycling 0,1,2, 0,1,3, ... (the paper's)",
            ValueSequence::default(),
        ),
        ("always zero", ValueSequence::Zero),
        ("constant 42", ValueSequence::Constant(42)),
        ("constant '/' (47)", ValueSequence::Constant(47)),
    ];

    println!("scanning the path component of \"plainname\" (no '/' present):\n");
    for (label, seq) in strategies {
        let mut cfg = MachineConfig::with_mode(Mode::FailureOblivious);
        cfg.mem.sequence = seq;
        cfg.fuel_per_call = 3_000_000;
        let mut m = Machine::from_source(MC_SOURCE, cfg).expect("compile");
        let p = m.alloc_cstring(b"plainname").expect("alloc");
        let started = std::time::Instant::now();
        match m.call("mc_component_end", &[p as i64]) {
            Ok(idx) => {
                let oob_reads = m.space().error_log().total_reads();
                println!(
                    "  {label:40} -> terminated at index {idx} after {oob_reads} manufactured reads ({:?})",
                    started.elapsed()
                );
            }
            Err(VmFault::FuelExhausted) => {
                println!("  {label:40} -> HANGS (instruction budget exhausted)");
            }
            Err(e) => println!("  {label:40} -> {e}"),
        }
    }

    println!();
    println!("The cycling sequence iterates through all small integers —");
    println!("favouring 0 and 1, the most commonly loaded values — so any");
    println!("read-driven loop condition is eventually satisfied.");
}
