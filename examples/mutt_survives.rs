//! The paper's running example (§2, Figure 1): Mutt's UTF-8 → UTF-7
//! conversion overflow, end to end, under all three compilers.
//!
//! ```text
//! cargo run --example mutt_survives
//! ```

use failure_oblivious::memory::Mode;
use failure_oblivious::servers::mutt::{attack_folder_name, Mutt};
use failure_oblivious::servers::Outcome;

fn main() {
    let attack = attack_folder_name(40);
    println!(
        "attack folder name: {} bytes alternating control/printable\n",
        attack.len()
    );

    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        println!("=== {} version ===", mode.name());
        let mut mutt = Mutt::boot(mode, 3);

        // The user's client is configured to open the malicious folder.
        let r = mutt.open_folder(&attack);
        match &r.outcome {
            Outcome::Done { ret, .. } => println!(
                "  open(attack folder) -> rc {ret}  (folder rejected by IMAP error handling)"
            ),
            Outcome::Crashed(f) => println!("  open(attack folder) -> MUTT DIED: {f}"),
        }

        // Can the user still read their mail?
        let inbox = mutt.open_folder(b"INBOX");
        let read = mutt.read_message(0);
        match &read.outcome {
            Outcome::Done { ret: 0, .. } => {
                let moved = mutt.move_message(1, b"archive");
                println!(
                    "  open INBOX -> rc {:?};  read msg 0 -> ok;  move msg 1 -> rc {:?}",
                    inbox.outcome.ret(),
                    moved.outcome.ret()
                );
                let log = mutt.process().machine().space().error_log();
                println!(
                    "  memory-error log: {} invalid writes discarded",
                    log.total_writes()
                );
                println!("  => the user keeps processing mail (§4.6.2)");
            }
            Outcome::Done { ret, .. } => println!("  read msg 0 -> unexpected rc {ret}"),
            Outcome::Crashed(_) => {
                println!("  read msg 0 -> impossible, the process is gone");
                println!("  => the user cannot read mail at all");
            }
        }
        println!();
    }
}
