//! Sendmail's double life (§4.4): a daemon that commits a benign memory
//! error on *every wake-up*, plus the prescan stack overflow.
//!
//! This is the paper's sharpest case against terminate-on-first-error:
//! the Bounds Check version dies before it ever serves a message, while
//! the failure-oblivious version logs a steady stream of errors and
//! delivers mail — through repeated attacks.
//!
//! ```text
//! cargo run --example sendmail_daemon
//! ```

use failure_oblivious::memory::Mode;
use failure_oblivious::servers::sendmail::{attack_address, Sendmail};
use failure_oblivious::servers::workload;
use failure_oblivious::servers::Outcome;

fn main() {
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        println!("=== {} version ===", mode.name());
        let mut sm = Sendmail::boot(mode);
        match sm.init_outcome() {
            Outcome::Crashed(f) => {
                println!("  daemon died during its first wake-up: {f}");
                println!("  => unusable with or without restarting (§4.7)\n");
                continue;
            }
            Outcome::Done { .. } => println!("  daemon up (first wake-up survived)"),
        }

        // A normal day: mail punctuated by attack messages and wake-ups.
        let mut delivered = 0;
        let mut rejected = 0;
        for i in 0..20u64 {
            sm.wakeup();
            let r = if i % 4 == 3 {
                sm.mail_from(&attack_address(400))
            } else {
                let r = sm.receive(
                    &workload::sendmail_address(i),
                    &workload::sendmail_address(100 + i),
                    &workload::lorem(300, i),
                );
                if r.outcome.ret() == Some(250) {
                    delivered += 1;
                }
                r
            };
            match &r.outcome {
                Outcome::Done { ret: 501, .. } => rejected += 1,
                Outcome::Done { .. } => {}
                Outcome::Crashed(f) => {
                    println!("  daemon crashed mid-stream: {f}");
                    break;
                }
            }
        }
        println!("  delivered {delivered} messages, rejected {rejected} attack addresses");
        let log = sm.process().machine().space().error_log();
        println!(
            "  memory-error log: {} total ({} reads, {} writes) — the wake-up error fires every cycle",
            log.total(),
            log.total_reads(),
            log.total_writes()
        );
        println!();
    }
}
