//! Quickstart: one buggy C program under the three compilers of the paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use failure_oblivious::{Machine, MachineConfig, Mode};

const PROGRAM: &str = r#"
/* A size-calculation bug of the kind the paper studies: the escape buffer
   assumes output <= input, but escaping doubles quote characters. */
char *escape(char *s) {
    size_t len = strlen(s);
    char *out = (char *) malloc(len + 1);          /* BUG: too small */
    char *p = out;
    while (*s) {
        if (*s == '"') *p++ = '\\';
        *p++ = *s;
        s++;
    }
    *p = '\0';
    return out;
}

int serve(char *request) {
    /* Parse scratch, freed immediately — which is what puts allocator
       metadata right behind the escape buffer's allocation. */
    char *tmp = (char *) malloc(128);
    strcpy(tmp, request);
    free(tmp);
    char *e = escape(request);
    /* The server's own error handling: overlong results are rejected. */
    if (strlen(e) > 48) { free(e); return -1; }
    print_str("escaped: ");
    print_str(e);
    print_str("\n");
    free(e);
    return 0;
}
"#;

fn main() {
    let legit = b"hello world";
    let attack: Vec<u8> = std::iter::repeat_n(b'"', 60).collect();

    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        println!("=== {} version ===", mode.name());
        let mut m = Machine::from_source(PROGRAM, MachineConfig::with_mode(mode))
            .expect("program compiles");

        for (label, input) in [("legitimate", &legit[..]), ("attack", attack.as_slice())] {
            let p = m.alloc_cstring(input).expect("guest alloc");
            match m.call("serve", &[p as i64]) {
                Ok(ret) => {
                    let out = String::from_utf8_lossy(&m.take_output())
                        .trim_end()
                        .to_string();
                    println!("  {label:11} -> ret {ret}  {out}");
                }
                Err(fault) => {
                    println!("  {label:11} -> PROCESS DIED: {fault}");
                    break;
                }
            }
        }
        let log = m.space().error_log();
        if log.total() > 0 {
            println!(
                "  memory-error log: {} invalid writes, {} invalid reads",
                log.total_writes(),
                log.total_reads()
            );
        }
        println!();
    }

    println!("The failure-oblivious version discards the out-of-bounds");
    println!("writes, the escape comes back truncated, the server's own");
    println!("length check rejects it, and the process keeps serving —");
    println!("the paper's \"unanticipated attack becomes anticipated");
    println!("error\" conversion, end to end.");
}
