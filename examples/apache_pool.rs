//! Apache under attack (§4.3.2): the regenerating process pool versus
//! failure-oblivious children.
//!
//! The Bounds Check and Standard versions survive as a *service* because
//! Apache respawns dead children — but an attacker who keeps sending the
//! overflow URL turns that into a fork-and-reinitialise treadmill. The
//! failure-oblivious children simply process every request.
//!
//! ```text
//! cargo run --release --example apache_pool
//! ```

use failure_oblivious::memory::Mode;
use failure_oblivious::servers::apache::{attack_url, ApachePool};

fn main() {
    const REQUESTS: usize = 200;
    println!("workload: {REQUESTS} requests, alternating attack URL and GET /index.html\n");
    println!(
        "{:<20} {:>10} {:>12} {:>14} {:>16}",
        "version", "served", "child deaths", "megacycles", "req/megacycle"
    );

    let mut fo_throughput = 0.0;
    let mut results = Vec::new();
    for mode in [Mode::FailureOblivious, Mode::BoundsCheck, Mode::Standard] {
        let mut pool = ApachePool::new(mode, 4);
        for i in 0..REQUESTS {
            if i % 2 == 0 {
                pool.get(&attack_url());
            } else {
                pool.get(b"/index.html");
            }
        }
        let mcycles = pool.total_cycles as f64 / 1e6;
        let throughput = pool.completed as f64 / mcycles;
        if mode == Mode::FailureOblivious {
            fo_throughput = throughput;
        }
        println!(
            "{:<20} {:>10} {:>12} {:>14.2} {:>16.2}",
            mode.name(),
            pool.completed,
            pool.child_deaths,
            mcycles,
            throughput
        );
        results.push((mode, throughput));
    }

    println!();
    for (mode, tp) in &results[1..] {
        println!(
            "failure-oblivious throughput is {:.1}x the {} version's (paper: 5.7x vs Bounds Check, 4.8x vs Standard)",
            fo_throughput / tp,
            mode.name()
        );
    }
}
