//! Cross-backend equivalence: the object table is a swappable backend
//! layer, and backend choice must be *invisible* to everything but the
//! wall clock.
//!
//! The contract under test, for all three [`TableKind`] backends:
//!
//! 1. identical workload traces produce **byte-identical transcripts**
//!    (return codes, output bytes, violation flags, virtual cycles) on
//!    every server driver, in every mode;
//! 2. the substrate is driven identically — [`SpaceStats`] compare equal
//!    across backends after the same trace;
//! 3. whole farm runs produce equal [`FarmReport`]s across backends, for
//!    every server kind × mode cell (the farm's determinism contract
//!    extended to the table layer).

use proptest::prelude::*;

use failure_oblivious::memory::{Mode, SpaceStats, TableKind};
use failure_oblivious::servers::farm::{run_farm, FarmConfig, ServerKind};
use failure_oblivious::servers::{apache, mc, mutt, pine, sendmail, workload, Measured};

/// One request's observable result, compared byte-for-byte across
/// backends.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    ret: Option<i64>,
    output: Vec<u8>,
    cycles: u64,
}

impl From<Measured> for Step {
    fn from(m: Measured) -> Step {
        Step {
            ret: m.outcome.ret(),
            output: m.outcome.output().to_vec(),
            cycles: m.cycles,
        }
    }
}

/// Drives one server of `kind` under `mode` on `table` through a fixed
/// seeded trace (legitimate traffic with attacks interleaved) and
/// returns the transcript plus the final substrate counters.
fn transcript(
    kind: ServerKind,
    mode: Mode,
    table: TableKind,
    seed: u64,
) -> (Vec<Step>, SpaceStats) {
    match kind {
        ServerKind::Apache => {
            let mut w = apache::ApacheWorker::boot_table(mode, table);
            let mut steps = Vec::new();
            for i in 0..10u64 {
                let r = match i % 5 {
                    0 => w.get(b"/index.html"),
                    1 => w.get(&workload::apache_url(3 + (seed % 4) as usize)),
                    2 => w.get(&apache::attack_url()),
                    3 => w.get(b"/big.bin"),
                    _ => w.get(b"/nosuchpage.html"),
                };
                steps.push(Step::from(r));
                if w.is_dead() {
                    break;
                }
            }
            (steps, *w.process().machine().space().stats())
        }
        ServerKind::Sendmail => {
            let mut s = sendmail::Sendmail::boot_table(mode, table);
            let mut steps = Vec::new();
            for i in 0..8u64 {
                if !s.usable() {
                    break;
                }
                let r = match i % 4 {
                    0 => s.receive(
                        &workload::sendmail_address(seed + i),
                        &workload::sendmail_address(seed + 100 + i),
                        &workload::lorem(120, seed + i),
                    ),
                    1 => s.send(
                        &workload::sendmail_address(seed + 200 + i),
                        &workload::lorem(80, seed + 300 + i),
                    ),
                    2 => s.mail_from(&sendmail::attack_address(40)),
                    _ => s.wakeup(),
                };
                steps.push(Step::from(r));
            }
            (steps, *s.process().machine().space().stats())
        }
        ServerKind::Pine => {
            let mut p = pine::Pine::boot_table(mode, table, pine::Pine::standard_mailbox(3));
            let mut steps = Vec::new();
            for i in 0..8i64 {
                if !p.usable() {
                    break;
                }
                let r = match i % 4 {
                    0 => p.read(i % 3),
                    1 => p.compose(),
                    2 => p.deliver(&pine::attack_from(40), b"pwn", b"payload"),
                    _ => p.move_message(i % 3),
                };
                steps.push(Step::from(r));
            }
            (steps, *p.process().machine().space().stats())
        }
        ServerKind::Mutt => {
            let mut m = mutt::Mutt::boot_table(mode, table, 2);
            let mut steps = Vec::new();
            for i in 0..8i64 {
                if m.process().is_dead() {
                    break;
                }
                let r = match i % 4 {
                    0 => m.open_folder(b"INBOX"),
                    1 => m.read_message(i % 2),
                    2 => m.open_folder(&mutt::attack_folder_name(40)),
                    _ => m.open_folder(b"work"),
                };
                steps.push(Step::from(r));
            }
            (steps, *m.process().machine().space().stats())
        }
        ServerKind::Mc => {
            let mut m = mc::Mc::boot_table(mode, table, &mc::clean_config());
            let mut steps = Vec::new();
            for i in 0..8u64 {
                if !m.usable() {
                    break;
                }
                let r = match i % 4 {
                    0 => m.copy(b"/home/user/data.bin", format!("/tmp/c{i}").as_bytes()),
                    1 => m.mkdir(format!("/tmp/d{i}").as_bytes()),
                    2 => m.open_archive(&mc::attack_links()),
                    _ => m.component_end(b"usr/share/component/lib"),
                };
                steps.push(Step::from(r));
            }
            (steps, *m.process().machine().space().stats())
        }
    }
}

/// The headline contract: 5 servers × 5 modes × 3 backends, transcripts
/// and substrate counters byte-identical across backends.
#[test]
fn transcripts_identical_across_backends_all_servers_all_modes() {
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            let (reference, ref_stats) = transcript(kind, mode, TableKind::Splay, 7);
            assert!(
                !reference.is_empty() || !matches!(mode, Mode::FailureOblivious),
                "{} under {mode:?} produced no steps",
                kind.name()
            );
            for table in [TableKind::BTree, TableKind::Flat] {
                let (steps, stats) = transcript(kind, mode, table, 7);
                assert_eq!(
                    reference,
                    steps,
                    "{} under {mode:?}: transcript diverged on {table}",
                    kind.name()
                );
                assert_eq!(
                    ref_stats,
                    stats,
                    "{} under {mode:?}: SpaceStats diverged on {table}",
                    kind.name()
                );
            }
        }
    }
}

/// Whole farms agree across backends for every server × mode cell.
#[test]
fn farm_reports_equal_across_backends_all_cells() {
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            let mut config = FarmConfig::new(kind, mode);
            config.servers = 2;
            config.threads = 2;
            config.requests_per_server = 8;
            config.attack_ratio = (1, 4);
            let reference = run_farm(&config.clone().with_table(TableKind::Splay));
            for table in [TableKind::BTree, TableKind::Flat] {
                let report = run_farm(&config.clone().with_table(table));
                assert_eq!(
                    reference,
                    report,
                    "{} under {mode:?}: farm diverged on {table}",
                    kind.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary workload seeds cannot tell the backends apart: the
    /// Apache driver trace (the stress-point server) stays
    /// byte-identical in every mode.
    #[test]
    fn apache_transcripts_backend_invariant_over_seeds(seed in 0u64..1_000_000) {
        for mode in Mode::ALL {
            let (reference, ref_stats) = transcript(ServerKind::Apache, mode, TableKind::Splay, seed);
            for table in [TableKind::BTree, TableKind::Flat] {
                let (steps, stats) = transcript(ServerKind::Apache, mode, table, seed);
                prop_assert_eq!(&reference, &steps, "mode {:?} table {}", mode, table);
                prop_assert_eq!(ref_stats, stats, "mode {:?} table {}", mode, table);
            }
        }
    }

    /// Arbitrary farm seeds cannot tell the backends apart either — the
    /// end-to-end version of the same property, restarts included.
    #[test]
    fn farm_reports_backend_invariant_over_seeds(seed in 0u64..1_000_000) {
        let mut config = FarmConfig::new(ServerKind::Apache, Mode::BoundsCheck);
        config.servers = 2;
        config.threads = 2;
        config.requests_per_server = 6;
        config.attack_ratio = (1, 3);
        config.seed = seed;
        let reference = run_farm(&config.clone().with_table(TableKind::Splay));
        for table in [TableKind::BTree, TableKind::Flat] {
            let report = run_farm(&config.clone().with_table(table));
            prop_assert_eq!(&reference, &report, "table {}", table);
        }
    }
}
