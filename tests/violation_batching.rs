//! The batched violation path against the seed's eager path.
//!
//! The violation fast path batches memory-error-log bookkeeping: the
//! log buffer is append-only scratch that reclaims its logically
//! evicted prefix in capacity-sized drains instead of paying one
//! `remove(0)` memmove per violation. The contract under test is that
//! the batching is **observation-invisible**:
//!
//! 1. an [`EagerLog`] — the seed implementation, kept here verbatim as
//!    the reference — fed the same storm reports the exact same
//!    retained records, totals, and drop counts at every interleaved
//!    read point;
//! 2. a [`MemorySpace`] driven through an interleaved load/store/free
//!    violation storm produces the same [`SpaceStats`], the same
//!    manufactured values (the `ValueSequence` position never shifts),
//!    and a retained log window equal to the tail of the
//!    unbounded-capacity ground truth, whatever the retention capacity;
//! 3. properties 1–2 hold across sequence kinds and log capacities
//!    (proptest).

use proptest::prelude::*;

use failure_oblivious::memory::{
    AccessCtx, AccessSize, ErrorKind, MemConfig, MemoryErrorLog, MemoryErrorRecord, MemorySpace,
    Mode, UnitId, ValueSequence,
};

const CTX: AccessCtx = AccessCtx { func: 3, pc: 17 };

// ---------------------------------------------------------------------
// The eager reference: the seed's log, one eviction per append.
// ---------------------------------------------------------------------

/// The seed tree's `MemoryErrorLog`, preserved as the differential
/// reference: eager eviction (`Vec::remove(0)`) on every append once
/// the retention capacity is reached.
struct EagerLog {
    records: Vec<MemoryErrorRecord>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    reads: u64,
    writes: u64,
}

impl EagerLog {
    fn new(capacity: usize) -> EagerLog {
        EagerLog {
            records: Vec::new(),
            capacity,
            dropped: 0,
            next_seq: 0,
            reads: 0,
            writes: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        kind: ErrorKind,
        addr: u64,
        size: AccessSize,
        referent: Option<UnitId>,
        offset: Option<i64>,
        func: u32,
        pc: u32,
    ) {
        if kind.is_read() {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        let rec = MemoryErrorRecord {
            seq: self.next_seq,
            kind,
            addr,
            size,
            referent,
            offset,
            func,
            pc,
        };
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            if self.capacity == 0 {
                self.dropped += 1;
                return;
            }
            self.records.remove(0);
            self.dropped += 1;
        }
        self.records.push(rec);
    }
}

/// Asserts every observable of the batched log equals the eager
/// reference's.
fn assert_logs_agree(batched: &MemoryErrorLog, eager: &EagerLog, at: &str) {
    assert_eq!(batched.total(), eager.next_seq, "{at}: total");
    assert_eq!(batched.total_reads(), eager.reads, "{at}: reads");
    assert_eq!(batched.total_writes(), eager.writes, "{at}: writes");
    assert_eq!(batched.dropped(), eager.dropped, "{at}: dropped");
    assert_eq!(batched.records(), &eager.records[..], "{at}: records");
}

/// One synthetic storm op, derived from a seed stream.
fn storm_op(i: u64, seed: u64) -> (ErrorKind, u64, AccessSize) {
    let x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let kind = match x % 5 {
        0 => ErrorKind::InvalidRead,
        1 => ErrorKind::InvalidWrite,
        2 => ErrorKind::DanglingRead,
        3 => ErrorKind::DanglingWrite,
        _ => ErrorKind::InvalidFree,
    };
    let size = match (x >> 8) % 4 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    };
    (kind, 0x1000 + (x >> 16) % 4096, size)
}

/// Feeds `ops` identical records to both logs, comparing at every
/// `read_every`-th op (interleaved reads are exactly where deferred
/// bookkeeping could leak).
fn drive_both(capacity: usize, ops: u64, read_every: u64, seed: u64) {
    let mut batched = MemoryErrorLog::new(capacity);
    let mut eager = EagerLog::new(capacity);
    for i in 0..ops {
        let (kind, addr, size) = storm_op(i, seed);
        let referent = ((i % 3) == 0).then_some(UnitId(i as u32));
        let offset = ((i % 3) == 0).then_some(i as i64 - 8);
        batched.record(kind, addr, size, referent, offset, i as u32, (i * 7) as u32);
        eager.record(kind, addr, size, referent, offset, i as u32, (i * 7) as u32);
        if read_every > 0 && i % read_every == 0 {
            assert_logs_agree(&batched, &eager, &format!("op {i}"));
        }
    }
    assert_logs_agree(&batched, &eager, "end of storm");
    batched.clear();
    let mut cleared = EagerLog::new(capacity);
    std::mem::swap(&mut eager, &mut cleared);
    assert_logs_agree(&batched, &eager, "after clear");
}

#[test]
fn batched_log_matches_eager_reference_across_regimes() {
    // Under, at, just over, and far over capacity; zero capacity; and a
    // capacity small enough that compaction happens many times.
    for (capacity, ops) in [
        (16, 10),
        (16, 16),
        (16, 17),
        (16, 1000),
        (0, 64),
        (1, 100),
        (4096, 10_000),
    ] {
        drive_both(capacity, ops, 7, 0xF0C);
    }
}

// ---------------------------------------------------------------------
// Space-level storms: stats, manufactured values, retained window.
// ---------------------------------------------------------------------

/// Runs an interleaved load/store/free violation storm and returns the
/// observable trace: manufactured read values, plus the final space.
fn run_storm(
    mode: Mode,
    sequence: ValueSequence,
    log_capacity: usize,
    ops: u64,
    seed: u64,
) -> (Vec<u64>, MemorySpace) {
    let mut s = MemorySpace::new(MemConfig {
        mode,
        global_len: 64 << 10,
        heap_len: 256 << 10,
        stack_len: 64 << 10,
        sequence,
        log_capacity,
        ..MemConfig::default()
    });
    let live = s.malloc(32).expect("arena block");
    let oob = s.ptr_add(live, 64);
    let freed = s.malloc(16).expect("victim block");
    s.free(freed, CTX).expect("free");
    let mut values = Vec::new();
    for i in 0..ops {
        let (_, _, size) = storm_op(i, seed);
        match i % 4 {
            0 => {
                let r = s.load(oob, size, CTX).expect("continuing mode");
                assert!(r.violation);
                values.push(r.value);
            }
            1 => {
                let w = s.store(oob, size, i, CTX).expect("continuing mode");
                assert!(w.violation);
            }
            2 => {
                // Dangling access through the freed block.
                let r = s.load(freed, size, CTX).expect("continuing mode");
                assert!(r.violation);
                values.push(r.value);
            }
            _ => {
                // Invalid free (not a live heap base): logged, discarded.
                s.free(live + 4, CTX).expect("continuing mode");
            }
        }
    }
    (values, s)
}

/// The storm's observables must be independent of the log capacity:
/// same manufactured values (ValueSequence positions), same stats, and
/// a retained window equal to the tail of the unbounded ground truth.
fn assert_capacity_invisible(mode: Mode, sequence: ValueSequence, capacity: usize, ops: u64) {
    let seed = 0xFEED ^ ops;
    let (truth_values, truth) = run_storm(mode, sequence, usize::MAX >> 8, ops, seed);
    let (values, s) = run_storm(mode, sequence, capacity, ops, seed);
    assert_eq!(values, truth_values, "manufactured values shifted");
    assert_eq!(s.stats(), truth.stats(), "space stats diverged");
    let full = truth.error_log().records();
    let kept = s.error_log().records();
    assert_eq!(s.error_log().total(), truth.error_log().total());
    assert_eq!(s.error_log().total_reads(), truth.error_log().total_reads());
    assert_eq!(
        s.error_log().total_writes(),
        truth.error_log().total_writes()
    );
    assert_eq!(kept.len(), full.len().min(capacity));
    assert_eq!(kept, &full[full.len() - kept.len()..], "retained window");
    assert_eq!(
        s.error_log().dropped(),
        (full.len() - kept.len()) as u64,
        "drop count"
    );
}

#[test]
fn violation_storms_are_log_capacity_invisible() {
    for mode in [Mode::FailureOblivious, Mode::Boundless, Mode::Redirect] {
        assert_capacity_invisible(mode, ValueSequence::default(), 32, 500);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_batched_log_matches_eager(
        capacity in 0usize..70,
        ops in 1u64..600,
        read_every in 1u64..13,
        seed in 0u64..1u64 << 48,
    ) {
        drive_both(capacity, ops, read_every, seed);
    }

    #[test]
    fn prop_storms_invisible_across_sequences_and_capacities(
        seq_pick in 0u8..5,
        capacity in 1usize..90,
        ops in 1u64..400,
    ) {
        let sequence = match seq_pick {
            0 => ValueSequence::Zero,
            1 => ValueSequence::Constant(1),
            2 => ValueSequence::Cycling { wrap: 2 },
            3 => ValueSequence::Cycling { wrap: 8 },
            _ => ValueSequence::Cycling { wrap: 256 },
        };
        assert_capacity_invisible(Mode::FailureOblivious, sequence, capacity, ops);
    }
}
