//! Image-sharing equivalence: booting a server from the interned
//! per-kind image cache must be *observably identical* to compiling it
//! from source — byte-identical request transcripts (return codes,
//! output bytes, virtual cycle charges) for all five servers under all
//! five policies — and every thread of a farm must observe the same
//! [`ProgramId`] for a kind.
//!
//! These tests are what lets the farm swap `compile_source` out of its
//! boot and restart paths without weakening the determinism contract:
//! if the cache ever served a stale or divergent image, the transcripts
//! here would split.

use proptest::prelude::*;

use failure_oblivious::compiler::ProgramId;
use failure_oblivious::memory::Mode;
use failure_oblivious::servers::apache::ApacheWorker;
use failure_oblivious::servers::farm::ServerKind;
use failure_oblivious::servers::mc::Mc;
use failure_oblivious::servers::mutt::Mutt;
use failure_oblivious::servers::pine::Pine;
use failure_oblivious::servers::sendmail::Sendmail;
use failure_oblivious::servers::{apache, mc, mutt, pine, sendmail, workload, Measured};

/// Everything a client could observe about one request.
type Event = (bool, Option<i64>, Vec<u8>, u64);

fn sig(m: &Measured) -> Event {
    (
        m.outcome.survived(),
        m.outcome.ret(),
        m.outcome.output().to_vec(),
        m.cycles,
    )
}

/// Drives a fixed mixed benign/attack script against one server booted
/// either from the cache (`cached == true`) or from a fresh, uncached
/// compile, returning the full transcript.
fn transcript(kind: ServerKind, mode: Mode, cached: bool, seed: u64) -> Vec<Event> {
    let image = if cached {
        kind.image()
    } else {
        kind.fresh_image()
    };
    let mut events = Vec::new();
    match kind {
        ServerKind::Apache => {
            let mut w = if cached {
                ApacheWorker::boot(mode)
            } else {
                ApacheWorker::from_image(&image, mode)
            };
            for req in [
                b"/index.html".to_vec(),
                b"/rw/index.html".to_vec(),
                apache::attack_url(),
                b"/missing.html".to_vec(),
                b"/big.bin".to_vec(),
            ] {
                events.push(sig(&w.get(&req)));
            }
        }
        ServerKind::Sendmail => {
            let mut s = if cached {
                Sendmail::boot(mode)
            } else {
                Sendmail::boot_image(&image, mode)
            };
            events.push(sig(&s.receive(
                &workload::sendmail_address(seed),
                &workload::sendmail_address(seed ^ 1),
                &workload::lorem(120, seed),
            )));
            events.push(sig(&s.wakeup()));
            events.push(sig(&s.receive(
                &sendmail::attack_address(40),
                &workload::sendmail_address(seed ^ 2),
                b"attack payload",
            )));
            events.push(sig(&s.send(
                &workload::sendmail_address(seed ^ 3),
                &workload::lorem(100, seed ^ 3),
            )));
        }
        ServerKind::Pine => {
            let mailbox = Pine::standard_mailbox(3);
            let mut p = if cached {
                Pine::boot(mode, mailbox)
            } else {
                Pine::boot_image(&image, mode, mailbox)
            };
            events.push(sig(&p.read(0)));
            events.push(sig(&p.deliver(
                &workload::from_field(seed),
                b"new mail",
                &workload::lorem(250, seed),
            )));
            events.push(sig(&p.deliver(&pine::attack_from(40), b"pwn", b"payload")));
            events.push(sig(&p.compose()));
            events.push(sig(&p.read(1)));
        }
        ServerKind::Mutt => {
            let mut m = if cached {
                Mutt::boot(mode, 2)
            } else {
                Mutt::boot_image(&image, mode, 2)
            };
            events.push(sig(&m.open_folder(b"INBOX")));
            events.push(sig(&m.read_message(0)));
            events.push(sig(&m.open_folder(&mutt::attack_folder_name(40))));
            events.push(sig(&m.open_folder(b"work")));
        }
        ServerKind::Mc => {
            let mut m = if cached {
                Mc::boot(mode, &mc::clean_config())
            } else {
                Mc::boot_image(&image, mode, &mc::clean_config())
            };
            events.push(sig(&m.copy(b"/home/user/data.bin", b"/tmp/c1")));
            events.push(sig(&m.mkdir(b"/tmp/d1")));
            events.push(sig(&m.open_archive(&mc::attack_links())));
            events.push(sig(&m.component_end(b"usr/share/component/lib")));
            events.push(sig(&m.delete(b"/tmp/c1")));
        }
    }
    events
}

#[test]
fn cached_boot_transcripts_match_from_source_boots_everywhere() {
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            let cached = transcript(kind, mode, true, 0xF0C);
            let fresh = transcript(kind, mode, false, 0xF0C);
            assert_eq!(
                cached,
                fresh,
                "{} under {:?}: cached-image transcript must be byte-identical to from-source",
                kind.name(),
                mode
            );
        }
    }
}

#[test]
fn cached_and_fresh_images_share_a_program_id() {
    for kind in ServerKind::ALL {
        assert_eq!(
            kind.image().id(),
            kind.fresh_image().id(),
            "{}: the cache must serve exactly what a cold compile produces",
            kind.name()
        );
    }
}

#[test]
fn concurrent_farm_threads_observe_one_program_id_per_kind() {
    // Race eight threads at the cache from a fresh process state; every
    // observer of every kind must agree on the id (OnceLock publishes
    // exactly one image) and agree with an independent cold compile.
    let observed: Vec<Vec<(ServerKind, ProgramId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    ServerKind::ALL
                        .iter()
                        .map(|&kind| (kind, kind.image().id()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for kind in ServerKind::ALL {
        let reference = kind.fresh_image().id();
        for per_thread in &observed {
            let &(_, id) = per_thread
                .iter()
                .find(|(k, _)| *k == kind)
                .expect("every thread observed every kind");
            assert_eq!(
                id,
                reference,
                "{}: a farm thread observed a divergent ProgramId",
                kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The transcript equivalence holds for arbitrary workload seeds,
    /// not just the fixed script — request *content* cannot drive the
    /// cached and from-source programs apart. (Pine and Sendmail
    /// thread the seed through their generated mail; one
    /// failure-oblivious and one terminating policy cover both
    /// continuation behaviours.)
    #[test]
    fn transcripts_match_for_arbitrary_workload_seeds(seed in any::<u64>()) {
        for kind in [ServerKind::Pine, ServerKind::Sendmail] {
            for mode in [Mode::FailureOblivious, Mode::BoundsCheck] {
                let cached = transcript(kind, mode, true, seed);
                let fresh = transcript(kind, mode, false, seed);
                prop_assert_eq!(
                    cached,
                    fresh,
                    "{} under {:?} diverged at seed {:#x}",
                    kind.name(),
                    mode,
                    seed
                );
            }
        }
    }
}
