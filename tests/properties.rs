//! Property-based tests over the core invariants.
//!
//! The central claims under test:
//!
//! 1. a failure-oblivious execution **never faults** on memory errors —
//!    arbitrary pointer abuse is survived;
//! 2. bounds-checked executions **never corrupt** data outside the
//!    accessed data unit, whatever the access pattern;
//! 3. the object table is a faithful interval map under arbitrary
//!    insert/remove/lookup interleavings;
//! 4. the allocator never hands out overlapping blocks;
//! 5. the manufactured-value sequence covers all small integers.

use proptest::prelude::*;

use failure_oblivious::memory::{
    AccessCtx, AccessSize, BTreeTable, FlatTable, Manufacturer, MemConfig, MemorySpace, Mode,
    ObjectTable, SplayTable, ValueSequence,
};
use failure_oblivious::{Machine, MachineConfig};

const CTX: AccessCtx = AccessCtx { func: 0, pc: 0 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three object-table backends agree on arbitrary op sequences.
    #[test]
    fn object_tables_agree(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..200)) {
        let mut splay = SplayTable::new();
        let mut btree = BTreeTable::new();
        let mut flat = FlatTable::new();
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (i, (op, slot)) in ops.into_iter().enumerate() {
            // Non-overlapping 16-byte ranges at 32-byte strides.
            let base = slot * 32;
            match op {
                0 => {
                    if !live.contains(&base) {
                        splay.insert(base, 16, failure_oblivious::memory::UnitId(i as u32));
                        btree.insert(base, 16, failure_oblivious::memory::UnitId(i as u32));
                        flat.insert(base, 16, failure_oblivious::memory::UnitId(i as u32));
                        live.insert(base);
                    }
                }
                1 => {
                    let s = splay.remove(base);
                    let b = btree.remove(base);
                    let f = flat.remove(base);
                    prop_assert_eq!(s.is_some(), b.is_some());
                    prop_assert_eq!(s, f);
                    live.remove(&base);
                }
                _ => {
                    // Probe a few addresses around the slot.
                    for probe in [base, base + 8, base + 15, base + 16, base + 24] {
                        let s = splay.lookup(probe);
                        let b = btree.lookup(probe);
                        let f = flat.lookup(probe);
                        prop_assert_eq!(s, b, "probe {}", probe);
                        prop_assert_eq!(s, f, "probe {}", probe);
                        if let Some(pl) = s {
                            prop_assert!(probe >= pl.base && probe < pl.base + pl.size);
                        }
                    }
                }
            }
        }
        prop_assert_eq!(splay.len(), btree.len());
        prop_assert_eq!(splay.len(), flat.len());
    }

    /// The allocator never hands out overlapping blocks, across arbitrary
    /// malloc/free interleavings and sizes.
    #[test]
    fn allocator_blocks_never_overlap(ops in proptest::collection::vec((any::<bool>(), 1u64..300), 1..150)) {
        let mut space = MemorySpace::new(MemConfig::with_mode(Mode::Standard));
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(p) = space.malloc(size) {
                    for &(q, qsize) in &live {
                        let disjoint = p + size <= q || q + qsize <= p;
                        prop_assert!(disjoint, "overlap: [{p}, +{size}) vs [{q}, +{qsize})");
                    }
                    live.push((p, size));
                }
            } else {
                let (p, _) = live.swap_remove(0);
                space.free(p, CTX).unwrap();
            }
        }
    }

    /// Bounds-checked stores through arbitrary offsets never reach any
    /// other data unit: the victim's contents are invariant.
    #[test]
    fn checked_stores_cannot_corrupt_neighbours(
        offsets in proptest::collection::vec(-512i64..512, 1..64),
    ) {
        let mut space = MemorySpace::new(MemConfig::with_mode(Mode::FailureOblivious));
        let victim = space.malloc(32).unwrap();
        for i in 0..4 {
            space.store(victim + i * 8, AccessSize::B8, 0xA5A5_0000 + i, CTX).unwrap();
        }
        let attacker = space.malloc(16).unwrap();
        for off in offsets {
            let p = space.ptr_add(attacker, off);
            // Never a fault in FO mode; OOB writes are discarded.
            space.store(p, AccessSize::B8, 0xDEAD_BEEF, CTX).unwrap();
        }
        for i in 0..4 {
            let v = space.load(victim + i * 8, AccessSize::B8, CTX).unwrap();
            prop_assert_eq!(v.value, 0xA5A5_0000 + i, "victim word {} corrupted", i);
        }
    }

    /// Pointer arithmetic round trip: wandering out of bounds and back
    /// always restores an ordinary, dereferenceable pointer.
    #[test]
    fn oob_pointer_round_trip(walk in proptest::collection::vec(-64i64..64, 1..40)) {
        let mut space = MemorySpace::new(MemConfig::with_mode(Mode::BoundsCheck));
        let p = space.malloc(16).unwrap();
        space.store(p, AccessSize::B1, 0x7E, CTX).unwrap();
        let mut q = p;
        let mut logical: i64 = 0;
        for step in walk {
            q = space.ptr_add(q, step);
            logical += step;
            prop_assert_eq!(space.effective_addr(q), p.wrapping_add(logical as u64));
        }
        // Walk back to the base and dereference.
        let back = space.ptr_add(q, -logical);
        prop_assert_eq!(back, p);
        prop_assert_eq!(space.load(back, AccessSize::B1, CTX).unwrap().value, 0x7E);
    }

    /// The cycling sequence visits every value below its wrap limit.
    #[test]
    fn manufactured_sequence_covers_small_integers(wrap in 3u64..64) {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap });
        let mut seen = vec![false; wrap as usize];
        for _ in 0..(wrap * 3 + 3) {
            let v = m.next_value();
            prop_assert!(v < wrap, "value {} exceeds wrap {}", v, wrap);
            seen[v as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Guest programs performing random in-bounds array traffic compute
    /// identical results in every mode (checking is semantics-preserving).
    #[test]
    fn modes_agree_on_random_array_programs(
        writes in proptest::collection::vec((0u8..32, 0i64..1000), 1..24),
    ) {
        let mut body = String::from("int main() { long xs[32]; int i; for (i = 0; i < 32; i++) xs[i] = 0;\n");
        for (idx, val) in &writes {
            body.push_str(&format!("xs[{idx}] = xs[{idx}] * 7 + {val};\n"));
        }
        body.push_str("long acc = 0; for (i = 0; i < 32; i++) acc = acc * 31 + xs[i]; return (int)(acc % 1000000); }");
        let mut results = Vec::new();
        for mode in Mode::ALL {
            let mut m = Machine::from_source(&body, MachineConfig::with_mode(mode)).unwrap();
            results.push(m.call("main", &[]).unwrap());
        }
        for w in results.windows(2) {
            prop_assert_eq!(w[0], w[1]);
        }
    }

    /// A failure-oblivious guest hammering a random out-of-bounds index
    /// pattern never faults and always runs to completion.
    #[test]
    fn fo_guest_never_faults_on_wild_indices(
        indices in proptest::collection::vec(-100i64..200, 1..24),
    ) {
        let mut body = String::from(
            "int main() { int xs[8]; int acc = 0; int i; for (i = 0; i < 8; i++) xs[i] = i;\n",
        );
        for idx in &indices {
            body.push_str(&format!("xs[{idx}] = acc; acc += xs[{idx}];\n"));
        }
        body.push_str("return acc & 0xFFFF; }");
        let mut m =
            Machine::from_source(&body, MachineConfig::with_mode(Mode::FailureOblivious)).unwrap();
        let r = m.call("main", &[]);
        prop_assert!(r.is_ok(), "FO must not fault: {:?}", r);
    }
}
