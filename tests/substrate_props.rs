//! Property tests for the memory substrate, the workload generators,
//! and the farm harness's determinism contract.
//!
//! These pin down the three foundations every experiment rests on:
//!
//! 1. **Manufactured values** follow the paper's §3 sequence — groups of
//!    `0, 1, k` with `k = 2, 3, 4, …` (the "0,1,2, 0,1,3, …" pattern
//!    that favours the common values 0 and 1 while still iterating
//!    through all small integers);
//! 2. **Out-of-bounds writes never corrupt adjacent live objects** under
//!    any checked policy — discarding (FO), out-of-band storage
//!    (Boundless), and in-unit wrapping (Redirect) all confine damage to
//!    the accessed data unit;
//! 3. **Workloads and farm runs are reproducible**: the same seed yields
//!    the same bytes, and the same farm config yields the same
//!    [`FarmReport`] no matter how many OS threads drive it.

use proptest::prelude::*;

use failure_oblivious::memory::{
    AccessCtx, AccessSize, Manufacturer, MemConfig, MemorySpace, Mode, ValueSequence,
};
use failure_oblivious::servers::farm::{run_farm, FarmConfig, ServerKind};
use failure_oblivious::servers::workload;

const CTX: AccessCtx = AccessCtx { func: 0, pc: 0 };

// ---------------------------------------------------------------------
// Manufactured-value sequence.
// ---------------------------------------------------------------------

#[test]
fn manufactured_sequence_starts_zero_one_two() {
    // The concrete opening of the paper's sequence: 0, 1, 2, 0, 1, 3, …
    let mut m = Manufacturer::new(ValueSequence::default());
    let head: Vec<u64> = (0..9).map(|_| m.next_value()).collect();
    assert_eq!(head, vec![0, 1, 2, 0, 1, 3, 0, 1, 4]);
}

#[test]
fn invalid_reads_consume_the_sequence_in_order() {
    // Reads through an out-of-bounds pointer manufacture 0, 1, 2, …
    let mut space = MemorySpace::new(MemConfig::with_mode(Mode::FailureOblivious));
    let p = space.malloc(8).unwrap();
    let mut seen = Vec::new();
    for i in 0..6 {
        let q = space.ptr_add(p, 64 + i); // far out of bounds
        seen.push(space.load(q, AccessSize::B1, CTX).unwrap().value);
        let back = space.ptr_add(q, -(64 + i));
        assert_eq!(back, p, "pointer must walk back in-bounds");
    }
    assert_eq!(seen, vec![0, 1, 2, 0, 1, 3]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every group of three is `0, 1, k` with `k` stepping 2, 3, …, and
    /// wrapping back to 2 — for any wrap limit.
    #[test]
    fn manufactured_sequence_is_grouped_zero_one_k(wrap in 3u64..200, groups in 2usize..60) {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap });
        let mut expected_k = 2u64;
        for g in 0..groups {
            prop_assert_eq!(m.next_value(), 0, "group {} position 0", g);
            prop_assert_eq!(m.next_value(), 1, "group {} position 1", g);
            prop_assert_eq!(m.next_value(), expected_k, "group {} position 2", g);
            expected_k += 1;
            if expected_k >= wrap {
                expected_k = 2;
            }
        }
    }

    /// Out-of-bounds stores through a wandering pointer never reach any
    /// *other* live data unit, under every policy that continues (and
    /// under Bounds Check the first violation is reported, not applied).
    #[test]
    fn oob_writes_never_corrupt_adjacent_live_objects(
        offsets in proptest::collection::vec(-160i64..192, 1..48),
        mode_pick in 0u8..4,
    ) {
        let mode = [
            Mode::FailureOblivious,
            Mode::Boundless,
            Mode::Redirect,
            Mode::BoundsCheck,
        ][mode_pick as usize];
        let mut space = MemorySpace::new(MemConfig::with_mode(mode));

        // Two victims bracketing the attacker allocation.
        let left = space.malloc(32).unwrap();
        let attacker = space.malloc(16).unwrap();
        let right = space.malloc(32).unwrap();
        for i in 0..4u64 {
            space.store(left + i * 8, AccessSize::B8, 0x1111_0000 + i, CTX).unwrap();
            space.store(right + i * 8, AccessSize::B8, 0x2222_0000 + i, CTX).unwrap();
        }

        for off in offsets {
            let p = space.ptr_add(attacker, off);
            let in_bounds = (0..16).contains(&off);
            match space.store(p, AccessSize::B8, 0xDEAD_BEEF, CTX) {
                Ok(_) => {}
                Err(fault) => {
                    // Only the terminating policy may fault, and only on
                    // an actual violation.
                    prop_assert_eq!(mode, Mode::BoundsCheck, "{} faulted: {}", mode.name(), fault);
                    prop_assert!(!in_bounds, "in-bounds store faulted at {}", off);
                    break; // the process would be dead here
                }
            }
        }

        for i in 0..4u64 {
            let l = space.load(left + i * 8, AccessSize::B8, CTX).unwrap().value;
            prop_assert_eq!(l, 0x1111_0000 + i, "left victim word {} corrupted ({})", i, mode.name());
            let r = space.load(right + i * 8, AccessSize::B8, CTX).unwrap().value;
            prop_assert_eq!(r, 0x2222_0000 + i, "right victim word {} corrupted ({})", i, mode.name());
        }
    }

    /// Workload generators are pure functions of their seed.
    #[test]
    fn workload_generators_are_seed_deterministic(seed in any::<u64>(), len in 1usize..2000) {
        prop_assert_eq!(workload::lorem(len, seed), workload::lorem(len, seed));
        prop_assert_eq!(workload::from_field(seed), workload::from_field(seed));
        prop_assert_eq!(workload::sendmail_address(seed), workload::sendmail_address(seed));
        let text = workload::lorem(len, seed);
        prop_assert!(!text.is_empty() && text.len() <= len.max(1));
        prop_assert!(!text.contains(&0), "workload text must stay NUL-free");
    }

    /// Different seeds give different request bytes (no seed collapse).
    #[test]
    fn workload_seeds_actually_vary_the_stream(seed in any::<u64>()) {
        let a = workload::lorem(600, seed);
        let b = workload::lorem(600, seed.wrapping_add(1));
        prop_assert_ne!(a, b);
    }
}

// ---------------------------------------------------------------------
// Farm determinism.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary seeds, the farm's report is invariant under the
    /// thread count (the unit of determinism is the server stream).
    #[test]
    fn farm_reports_are_thread_count_invariant_for_any_seed(seed in any::<u64>()) {
        let mut config = FarmConfig::new(ServerKind::Apache, Mode::BoundsCheck);
        config.servers = 3;
        config.requests_per_server = 8;
        config.seed = seed;
        let sequential = run_farm(&config.clone().with_threads(1));
        let parallel = run_farm(&config.with_threads(3));
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.stats.requests, 24);
    }
}

/// The acceptance-criteria configuration: at least 4 worker threads, at
/// least 100 requests per server, identical reports at 1, 2, 4, and 8
/// threads under the work-stealing scheduler — including repeated runs
/// at the same thread count and across scheduling grains.
#[test]
fn farm_acceptance_four_threads_hundred_requests() {
    for kind in [ServerKind::Apache, ServerKind::Pine] {
        let mut config = FarmConfig::new(kind, Mode::FailureOblivious);
        config.servers = 6;
        config.requests_per_server = 100;
        let base = run_farm(&config.clone().with_threads(4));
        assert_eq!(base.stats.requests, 600);
        assert_eq!(
            base.stats.completed,
            600,
            "{}: FO farm must answer all requests",
            kind.name()
        );
        for threads in [1usize, 2, 4, 8] {
            let other = run_farm(&config.clone().with_threads(threads));
            assert_eq!(
                base,
                other,
                "{}: report must not depend on thread count {}",
                kind.name(),
                threads
            );
        }
        // The work-stealing grain shuffles which thread serves which
        // slice; the measured data must not notice.
        for slice in [1usize, 7, 1000] {
            let other = run_farm(&config.clone().with_threads(4).with_slice(slice));
            assert_eq!(
                base,
                other,
                "{}: report must not depend on slice grain {}",
                kind.name(),
                slice
            );
        }
    }
}
