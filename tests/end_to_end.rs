//! End-to-end pipeline tests: MiniC source → front end → bytecode → VM →
//! memory policy, exercised across crates.

use failure_oblivious::memory::{ErrorKind, Mode};
use failure_oblivious::{run, Machine, MachineConfig, RunError, VmFault};

/// The paper's Figure 1, compiled and executed directly: convert a benign
/// name, then an attack name, in each mode.
#[test]
fn figure1_conversion_end_to_end() {
    use failure_oblivious::servers::mutt::MUTT_SOURCE;

    let convert = |mode: Mode, name: &[u8]| -> Result<Option<Vec<u8>>, VmFault> {
        let mut m = Machine::from_source(MUTT_SOURCE, MachineConfig::with_mode(mode)).unwrap();
        let p = m.alloc_cstring(name).unwrap();
        let r = m.call("utf8_to_utf7", &[p as i64, name.len() as i64])?;
        if r == 0 {
            return Ok(None);
        }
        Ok(Some(m.read_cstring(r as u64)))
    };

    // Plain ASCII converts to itself in every mode.
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        let out = convert(mode, b"INBOX").unwrap().unwrap();
        assert_eq!(out, b"INBOX".to_vec(), "mode {mode:?}");
    }

    // A non-ASCII name with enough ASCII padding that the 2x estimate
    // holds: the conversion must be byte-for-byte correct.
    // U+00E9 (é) = 0xC3 0xA9 → UTF-7 "&AOk-"; "éaaaa" → "&AOk-aaaa".
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        let name = [0xC3, 0xA9, b'a', b'a', b'a', b'a'];
        let out = convert(mode, &name).unwrap().unwrap();
        assert_eq!(out, b"&AOk-aaaa".to_vec(), "mode {mode:?}");
    }

    // A *bare* two-byte character expands by 5/2 — past the 2x estimate —
    // so even this tiny input trips the bug under Bounds Check. (This is
    // why the paper calls the inputs "very rare": the expansion must beat
    // the estimate, which needs dense non-ASCII or control characters.)
    assert!(convert(Mode::BoundsCheck, &[0xC3, 0xA9]).is_err());

    // Malformed UTF-8 takes the `goto bail` path everywhere.
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        assert_eq!(convert(mode, &[0xC0]).unwrap(), None, "mode {mode:?}");
    }

    // The attack name: Bounds Check terminates, FO truncates and returns.
    let attack = failure_oblivious::servers::mutt::attack_folder_name(40);
    assert!(convert(Mode::BoundsCheck, &attack).is_err());
    let out = convert(Mode::FailureOblivious, &attack).unwrap().unwrap();
    assert!(!out.is_empty(), "FO conversion returns a truncated name");
}

#[test]
fn error_log_records_full_context() {
    let src = r#"
        int poke(int i) {
            int xs[4];
            xs[0] = 1;
            return xs[i];
        }
    "#;
    let mut m =
        Machine::from_source(src, MachineConfig::with_mode(Mode::FailureOblivious)).unwrap();
    m.call("poke", &[100]).unwrap();
    let log = m.space().error_log();
    assert_eq!(log.total(), 1);
    let rec = &log.records()[0];
    assert_eq!(rec.kind, ErrorKind::InvalidRead);
    assert!(rec.referent.is_some(), "provenance must be known");
    assert_eq!(rec.offset, Some(400), "intended offset = 100 * 4");
}

#[test]
fn dangling_pointer_reads_are_intercepted() {
    let src = r#"
        int main() {
            int *p = (int *) malloc(16);
            p[0] = 77;
            free(p);
            return p[0];
        }
    "#;
    // Bounds Check terminates.
    assert!(run(src, Mode::BoundsCheck).is_err());
    // Failure-oblivious manufactures a value and continues.
    let v = run(src, Mode::FailureOblivious).unwrap();
    assert_eq!(v, 0, "first manufactured value");
}

#[test]
fn double_free_handling_across_modes() {
    let src = r#"
        int main() {
            char *p = (char *) malloc(8);
            free(p);
            free(p);
            return 11;
        }
    "#;
    // Standard: allocator detects the double free (glibc abort).
    assert!(run(src, Mode::Standard).is_err());
    assert!(run(src, Mode::BoundsCheck).is_err());
    // FO: logged and discarded.
    assert_eq!(run(src, Mode::FailureOblivious).unwrap(), 11);
}

#[test]
fn negative_indexing_underflow() {
    let src = r#"
        int main() {
            int xs[4];
            int i;
            for (i = 0; i < 4; i++) xs[i] = 10;
            xs[-1] = 99;
            return xs[0] + xs[-2];
        }
    "#;
    assert!(run(src, Mode::BoundsCheck).is_err());
    // FO: the write at [-1] is discarded, the read at [-2] manufactures.
    assert_eq!(run(src, Mode::FailureOblivious).unwrap(), 10);
}

#[test]
fn boundless_variant_round_trips_out_of_bounds_data() {
    // §5.1: "instead of discarding invalid writes, the generated code
    // stores the values in a hash table indexed under the data unit
    // identifier and offset. Corresponding invalid reads return the
    // appropriate stored values. This variant eliminates size calculation
    // errors."
    let src = r#"
        int main() {
            int i;
            int *xs = (int *) malloc(4 * sizeof(int));
            for (i = 0; i < 16; i++) xs[i] = i * 3;
            int acc = 0;
            for (i = 0; i < 16; i++) acc += xs[i];
            return acc;
        }
    "#;
    let expect: i64 = (0..16).map(|i| i * 3).sum();
    assert_eq!(
        run(src, Mode::Boundless).unwrap(),
        expect,
        "boundless: as if sized right"
    );
    // Plain FO manufactures for the out-of-bounds reads instead.
    let fo = run(src, Mode::FailureOblivious).unwrap();
    assert_ne!(fo, expect);
}

#[test]
fn redirect_variant_wraps_into_the_unit() {
    let src = r#"
        int main() {
            char buf[4];
            buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c'; buf[3] = 'd';
            /* buf[5] redirects to offset 5 % 4 == 1 */
            return buf[5];
        }
    "#;
    assert_eq!(run(src, Mode::Redirect).unwrap(), b'b' as i64);
}

#[test]
fn run_error_display_is_informative() {
    let e = run("int main() { return 1 / 0; }", Mode::Standard).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("division by zero"), "{msg}");
    let RunError::Fault(f) = e else { panic!() };
    assert!(f.is_crash());
}

#[test]
fn deep_guest_programs_execute_correctly() {
    // A small interpreter stress: sieve of Eratosthenes + checksum, to
    // shake out codegen/VM interactions at moderate scale.
    let src = r#"
        int sieve() {
            char composite[1000];
            int i; int j; int count = 0;
            for (i = 0; i < 1000; i++) composite[i] = 0;
            for (i = 2; i < 1000; i++) {
                if (!composite[i]) {
                    count++;
                    for (j = i * 2; j < 1000; j += i) composite[j] = 1;
                }
            }
            return count;
        }
    "#;
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("sieve", &[]).unwrap(), 168, "mode {mode:?}");
    }
}

#[test]
fn all_five_modes_agree_on_correct_programs() {
    let src = r#"
        long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        long gcd(long a, long b) { while (b) { long t = a % b; a = b; b = t; } return a; }
        long main() {
            char buf[32];
            strcpy(buf, "checksum");
            long h = 0;
            int i;
            for (i = 0; buf[i]; i++) h = h * 31 + buf[i];
            return fib(15) + gcd(1071, 462) + h % 1000;
        }
    "#;
    let expected = run(src, Mode::Standard).unwrap();
    for mode in Mode::ALL {
        assert_eq!(run(src, mode).unwrap(), expected, "mode {mode:?}");
    }
}
