//! Checkpoint-restore equivalence: a server restored from its boot
//! checkpoint must be **byte-identical** to one that booted from
//! scratch — transcripts (return codes, output bytes, virtual cycles),
//! [`SpaceStats`], and the full `MemoryErrorLog` contents included.
//!
//! Boots are pure functions of `(image, spec, environment)`, so the
//! checkpoint layer is sound exactly when nothing observable can tell a
//! restored process from a freshly booted one. The battery drives both
//! flavours through the §4/§5.1 attack library for all five servers ×
//! all five modes, then stresses the stateful case — Pine's
//! spec-preserving restart, which restores a pre-index base and replays
//! only the mailbox delta — against a full-replay reference, including
//! poisoned-mailbox restart chains and proptests over workload seeds
//! and restart counts.

use proptest::prelude::*;

use failure_oblivious::memory::{Mode, SpaceStats};
use failure_oblivious::servers::image::ServerKind;
use failure_oblivious::servers::{
    apache, mc, mutt, pine, sendmail, workload, BootSpec, Measured, Process,
};

/// One request's observable result plus the substrate state after it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    ret: Option<i64>,
    output: Vec<u8>,
    cycles: u64,
}

impl Step {
    fn of(m: &Measured) -> Step {
        Step {
            ret: m.outcome.ret(),
            output: m.outcome.output().to_vec(),
            cycles: m.cycles,
        }
    }
}

/// Everything the substrate exposes after a trace: the per-space
/// counters and the complete retained error log (records compared
/// field-by-field, totals included).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SubstrateState {
    stats: SpaceStats,
    log_total: u64,
    log_reads: u64,
    log_writes: u64,
    log_dropped: u64,
    records: Vec<failure_oblivious::memory::MemoryErrorRecord>,
}

fn substrate(proc: &Process) -> SubstrateState {
    let space = proc.machine().space();
    let log = space.error_log();
    SubstrateState {
        stats: *space.stats(),
        log_total: log.total(),
        log_reads: log.total_reads(),
        log_writes: log.total_writes(),
        log_dropped: log.dropped(),
        records: log.records().to_vec(),
    }
}

/// Drives one server's benign + attack script twice — once on the
/// cached (checkpoint-restored) boot, once on a from-scratch boot of
/// the same interned image — and asserts byte identity.
fn assert_kind_equivalent(kind: ServerKind, mode: Mode) {
    let spec = BootSpec::new(kind, mode);
    let tag = format!("{}/{mode:?}", kind.name());
    match kind {
        ServerKind::Apache => {
            let cached = apache::ApacheWorker::boot_spec(&spec);
            let fresh = apache::ApacheWorker::from_image_spec(&kind.image(), &spec);
            let drive = |mut w: apache::ApacheWorker| {
                let steps: Vec<Step> = [
                    w.get(b"/index.html"),
                    w.get(&apache::attack_url()),
                    w.get(b"/rw/index.html"),
                    w.get(b"/big.bin"),
                ]
                .iter()
                .map(Step::of)
                .collect();
                (steps, substrate(w.process()))
            };
            assert_eq!(drive(cached), drive(fresh), "{tag}");
        }
        ServerKind::Sendmail => {
            let cached = sendmail::Sendmail::boot_spec(&spec);
            let fresh = sendmail::Sendmail::boot_image_spec(&kind.image(), &spec);
            assert_eq!(
                cached.init_outcome(),
                fresh.init_outcome(),
                "{tag}: init outcome"
            );
            let drive = |mut s: sendmail::Sendmail| {
                let steps: Vec<Step> = [
                    s.receive(
                        &workload::sendmail_address(1),
                        &workload::sendmail_address(2),
                        b"body one",
                    ),
                    s.receive(
                        &sendmail::attack_address(40),
                        &workload::sendmail_address(3),
                        b"attack payload",
                    ),
                    s.wakeup(),
                    s.send(&workload::sendmail_address(4), b"outbound"),
                ]
                .iter()
                .map(Step::of)
                .collect();
                (steps, substrate(s.process()))
            };
            assert_eq!(drive(cached), drive(fresh), "{tag}");
        }
        ServerKind::Pine => {
            let mailbox = failure_oblivious::servers::image::standard_pine_mailbox().clone();
            let cached = pine::Pine::boot_spec(&spec, mailbox.clone());
            let fresh = pine::Pine::boot_image_spec(&kind.image(), &spec, mailbox);
            assert_eq!(
                cached.init_outcome(),
                fresh.init_outcome(),
                "{tag}: init outcome"
            );
            let drive = |mut p: pine::Pine| {
                let steps: Vec<Step> = [
                    p.read(0),
                    p.deliver(&pine::attack_from(40), b"pwn", b"payload"),
                    p.compose(),
                    p.read(2),
                    p.move_message(1),
                ]
                .iter()
                .map(Step::of)
                .collect();
                (steps, substrate(p.process()))
            };
            assert_eq!(drive(cached), drive(fresh), "{tag}");
        }
        ServerKind::Mutt => {
            const SEED: usize = failure_oblivious::servers::image::MUTT_SEED_MESSAGES;
            let cached = mutt::Mutt::boot_spec(&spec, SEED);
            let fresh = mutt::Mutt::boot_image_spec(&kind.image(), &spec, SEED);
            let drive = |mut m: mutt::Mutt| {
                let steps: Vec<Step> = [
                    m.open_folder(b"INBOX"),
                    m.open_folder(&mutt::attack_folder_name(40)),
                    m.read_message(0),
                    m.open_folder(b"work"),
                ]
                .iter()
                .map(Step::of)
                .collect();
                (steps, substrate(m.process()))
            };
            assert_eq!(drive(cached), drive(fresh), "{tag}");
        }
        ServerKind::Mc => {
            let config = failure_oblivious::servers::image::standard_mc_config().clone();
            let cached = mc::Mc::boot_spec(&spec, &config);
            let fresh = mc::Mc::boot_image_spec(&kind.image(), &spec, &config);
            assert_eq!(
                cached.init_outcome(),
                fresh.init_outcome(),
                "{tag}: init outcome"
            );
            let drive = |mut m: mc::Mc| {
                let steps: Vec<Step> = [
                    m.copy(b"/home/user/data.bin", b"/tmp/c1"),
                    m.open_archive(&mc::attack_links()),
                    m.component_end(b"usr/share/component/lib"),
                    m.mkdir(b"/tmp/d"),
                    m.delete(b"/tmp/c1"),
                ]
                .iter()
                .map(Step::of)
                .collect();
                (steps, substrate(m.process()))
            };
            assert_eq!(drive(cached), drive(fresh), "{tag}");
        }
    }
}

#[test]
fn restored_boots_match_fresh_boots_everywhere() {
    // 5 servers × 5 modes × the benign + §4/§5.1 attack library.
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            assert_kind_equivalent(kind, mode);
        }
    }
}

// ---------------------------------------------------------------------
// Pine restart chains: restore + delta replay vs full-replay reference.
// ---------------------------------------------------------------------

/// A full-replay Pine reference restart: boot a fresh process over the
/// current mail file (the seed behaviour, kept as the semantic ground
/// truth the O(delta) restart is compared against).
fn full_replay_reference(spec: &BootSpec, mailbox: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>) -> pine::Pine {
    pine::Pine::boot_image_spec(&ServerKind::Pine.image(), spec, mailbox)
}

/// Observable identity of a Pine reader: usability, init outcome shape,
/// substrate state, and a read transcript over every message.
fn pine_fingerprint(p: &mut pine::Pine, messages: i64) -> (bool, Vec<Step>, SubstrateState) {
    let usable = p.usable();
    let steps: Vec<Step> = (0..messages).map(|i| Step::of(&p.read(i))).collect();
    (usable, steps, substrate(p.process()))
}

/// Drives a poisoned-mailbox restart chain in both implementations and
/// compares after every restart.
fn assert_restart_chain_equivalent(
    mode: Mode,
    extra_deliveries: usize,
    restarts: usize,
    seed: u64,
) {
    let spec = BootSpec::new(ServerKind::Pine, mode);
    let mut mailbox = pine::Pine::standard_mailbox(4);
    mailbox.insert(2, (pine::attack_from(40), b"pwn".to_vec(), b"x".to_vec()));

    let mut fast = pine::Pine::boot_spec(&spec, mailbox.clone());
    let mut reference = full_replay_reference(&spec, mailbox.clone());
    assert_eq!(
        fast.init_outcome(),
        reference.init_outcome(),
        "{mode:?}: poisoned boot"
    );

    // New mail (benign and poisoned) arrives live; both readers see the
    // same stream and their mail files grow identically.
    for i in 0..extra_deliveries {
        let from = workload::from_field(seed.wrapping_add(i as u64));
        let body = workload::lorem(120, seed ^ i as u64);
        let a = fast.deliver(&from, b"live", &body);
        let b = reference.deliver(&from, b"live", &body);
        assert_eq!(Step::of(&a), Step::of(&b), "{mode:?}: delivery {i}");
    }

    let messages = (5 + extra_deliveries) as i64;
    for round in 0..restarts {
        // Fast path: restore the pre-index base, replay the delta.
        fast.restart();
        // Reference: full boot over the same (grown) mail file.
        let current_mailbox = {
            // The reference's mailbox grew the same way; rebuild it from
            // the original plus deliveries by re-deriving the stream.
            let mut mb = mailbox.clone();
            for i in 0..extra_deliveries {
                mb.push((
                    workload::from_field(seed.wrapping_add(i as u64)),
                    b"live".to_vec(),
                    workload::lorem(120, seed ^ i as u64),
                ));
            }
            mb
        };
        reference = full_replay_reference(&spec, current_mailbox);
        assert_eq!(
            pine_fingerprint(&mut fast, messages),
            pine_fingerprint(&mut reference, messages),
            "{mode:?}: after restart {round}"
        );
    }
}

#[test]
fn poisoned_mailbox_restart_chains_match_full_replay() {
    // Bounds Check and Standard die at init and every restart dies the
    // same way (§4.7); the continuing modes restart into a serving
    // reader. All must be byte-identical to full replay.
    for mode in Mode::ALL {
        assert_restart_chain_equivalent(mode, 2, 3, 0xF0C5);
    }
}

#[test]
fn farm_restart_equivalence_survives_live_attack_deliveries() {
    // The farm's actual failure shape: a clean boot, then the attack
    // arrives live (entering the mail file), the process dies, and the
    // supervisor restarts into the now-poisoned environment.
    for mode in [Mode::Standard, Mode::BoundsCheck] {
        let spec = BootSpec::new(ServerKind::Pine, mode);
        let mailbox = failure_oblivious::servers::image::standard_pine_mailbox().clone();
        let mut fast = pine::Pine::boot_spec(&spec, mailbox.clone());
        let mut reference = full_replay_reference(&spec, mailbox.clone());
        let a = fast.deliver(&pine::attack_from(40), b"pwn", b"payload");
        let b = reference.deliver(&pine::attack_from(40), b"pwn", b"payload");
        assert_eq!(Step::of(&a), Step::of(&b), "{mode:?}: attack delivery");
        assert!(fast.process().is_dead(), "{mode:?}: attack must kill");

        fast.restart();
        let mut grown = mailbox.clone();
        grown.push((pine::attack_from(40), b"pwn".to_vec(), b"payload".to_vec()));
        reference = full_replay_reference(&spec, grown);
        assert_eq!(
            pine_fingerprint(&mut fast, 4),
            pine_fingerprint(&mut reference, 4),
            "{mode:?}: restart into poisoned mail file"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_restart_chains_equivalent_over_seeds_and_depths(
        seed in 0u64..1u64 << 40,
        extra in 0usize..4,
        restarts in 1usize..4,
        mode_pick in 0u8..5,
    ) {
        let mode = Mode::ALL[mode_pick as usize % Mode::ALL.len()];
        assert_restart_chain_equivalent(mode, extra, restarts, seed);
    }

    #[test]
    fn prop_restored_boots_replay_seeded_workloads_identically(
        seed in 0u64..1u64 << 40,
        requests in 1usize..6,
    ) {
        // A cached Apache worker and a fresh one serve the same seeded
        // request mix identically (the per-request content derives from
        // the seed, as in the farm's streams).
        let spec = BootSpec::new(ServerKind::Apache, Mode::FailureOblivious);
        let mut cached = apache::ApacheWorker::boot_spec(&spec);
        let mut fresh =
            apache::ApacheWorker::from_image_spec(&ServerKind::Apache.image(), &spec);
        for i in 0..requests {
            let x = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let url: Vec<u8> = match x % 4 {
                0 => b"/index.html".to_vec(),
                1 => apache::rewrite_url((x >> 8) as usize % 16),
                2 => b"/big.bin".to_vec(),
                _ => apache::attack_url(),
            };
            prop_assert_eq!(
                Step::of(&cached.get(&url)),
                Step::of(&fresh.get(&url)),
                "request {}", i
            );
        }
        prop_assert_eq!(substrate(cached.process()), substrate(fresh.process()));
    }
}
