//! Stability runs (§4.2.4, §4.3.4, §4.4.4, §4.5.4, §4.6.4), scaled down:
//! the paper deployed the failure-oblivious servers for days to months
//! with attacks interleaved into daily workloads; we compress each study
//! into hundreds of requests with the same interleaving structure and
//! assert zero anomalies.

use failure_oblivious::memory::Mode;
use failure_oblivious::servers::{apache, mc, mutt, pine, sendmail, workload};

/// Pine: "we used Pine to process roughly 25 new mail messages a day...
/// periodically sent an email that triggered the memory error... executed
/// successfully through all errors to perform all requests flawlessly."
#[test]
fn pine_stability_with_periodic_attacks() {
    let mut p = pine::Pine::boot(Mode::FailureOblivious, pine::Pine::standard_mailbox(10));
    assert!(p.usable());
    let mut delivered = 10i64;
    for day in 0..12u64 {
        // A day's mail, with one attack message mixed in.
        for n in 0..8 {
            let seed = day * 100 + n;
            let r = if n == 3 {
                p.deliver(&pine::attack_from(40), b"pwn attempt", b"ignore me")
            } else {
                p.deliver(
                    &workload::from_field(seed),
                    format!("day {day} msg {n}").as_bytes(),
                    &workload::lorem(600, seed),
                )
            };
            assert!(r.outcome.survived(), "day {day} msg {n}: {:?}", r.outcome);
            delivered += 1;
        }
        // The user reads, composes, and files messages.
        assert_eq!(p.read(delivered - 2).outcome.ret(), Some(0), "day {day}");
        assert_eq!(p.compose().outcome.ret(), Some(0));
        assert_eq!(p.move_message(delivered - 1).outcome.ret(), Some(0));
        delivered -= 1; // one message moved out
    }
    assert!(p.usable(), "Pine must still be serving after the run");
}

/// Apache: "we have been using the Failure Oblivious version to serve our
/// research project's web site... periodically presented the web server
/// with requests that triggered the vulnerability... no anomalous
/// behavior."
#[test]
fn apache_stability_mixed_traffic() {
    let mut pool = apache::ApachePool::new(Mode::FailureOblivious, 3);
    let mut ok = 0;
    for i in 0..400usize {
        let outcome = match i % 10 {
            0 => pool.get(&apache::attack_url()),
            1 => pool.get(&apache::rewrite_url(3)),
            2 => pool.get(b"/big.bin"),
            3 => pool.get(b"/nonexistent.html"),
            _ => pool.get(b"/index.html"),
        };
        assert!(outcome.survived(), "request {i} dropped: {outcome:?}");
        if outcome.ret() == Some(200) {
            ok += 1;
        }
    }
    assert_eq!(pool.child_deaths, 0, "no FO child may ever die");
    assert!(ok >= 320, "served {ok} OK responses");
}

/// Sendmail: "used it to send and receive hundreds of thousands of email
/// messages... repeatedly sent the attack message through the daemon,
/// which continued through the attack to correctly process all subsequent
/// commands."
#[test]
fn sendmail_stability_with_attacks_and_wakeups() {
    let mut sm = sendmail::Sendmail::boot(Mode::FailureOblivious);
    assert!(sm.usable());
    let mut expect_delivered = 0;
    for i in 0..120u64 {
        sm.wakeup();
        if i % 7 == 0 {
            let r = sm.mail_from(&sendmail::attack_address(100 + (i % 40) as usize * 5));
            assert_eq!(r.outcome.ret(), Some(501), "attack {i} must be rejected");
        } else {
            let r = sm.receive(
                &workload::sendmail_address(i),
                &workload::sendmail_address(10_000 + i),
                &workload::lorem(100 + (i as usize % 8) * 400, i),
            );
            assert_eq!(r.outcome.ret(), Some(250), "message {i} must deliver");
            expect_delivered += 1;
        }
    }
    // Every legitimate message was delivered, none lost or duplicated.
    assert_eq!(sm.delivered_count(), Some(expect_delivered));
    // The wake-up memory error fired throughout (the §3 log at work).
    let log = sm.process().machine().space().error_log();
    assert!(
        log.total_reads() >= 120,
        "wake-up errors: {}",
        log.total_reads()
    );
}

/// Midnight Commander: "he used the Failure Oblivious version to manage
/// his files. Periodically... attempted to open the problematic archive
/// ... then went back to using the Midnight Commander to accomplish his
/// work." The config also contains the blank line that disables the
/// Bounds Check version.
#[test]
fn mc_stability_daily_use() {
    let mut m = mc::Mc::boot(Mode::FailureOblivious, &mc::config_with_blank_line());
    assert!(m.usable(), "FO MC must start despite the blank config line");
    for session in 0..10 {
        // Periodically open the problematic archive...
        let r = m.open_archive(&mc::attack_links());
        assert!(r.outcome.survived(), "session {session}");
        // ...then do real work.
        let base = format!("/work/file{session}");
        m.create(base.as_bytes(), 50_000, false);
        let copy = m.copy(base.as_bytes(), format!("{base}.bak").as_bytes());
        assert_eq!(copy.outcome.ret(), Some(50_000), "session {session}");
        let mk = m.mkdir(format!("/work/dir{session}").as_bytes());
        assert!(mk.outcome.ret().unwrap_or(-1) >= 0);
        let del = m.delete(format!("{base}.bak").as_bytes());
        assert_eq!(del.outcome.ret(), Some(0));
    }
}

/// Mutt: "we configured Mutt to trigger the security vulnerability when
/// it loaded... successfully executed through the resulting memory errors
/// to correctly execute all of his requests."
#[test]
fn mutt_stability_attack_at_every_load() {
    for round in 0..6 {
        let mut mt = mutt::Mutt::boot(Mode::FailureOblivious, 6);
        // The configured (malicious) folder is tried at startup.
        let r = mt.open_folder(&mutt::attack_folder_name(40));
        assert_eq!(r.outcome.ret(), Some(-1), "round {round}");
        // The user then works normally.
        assert_eq!(mt.open_folder(b"INBOX").outcome.ret(), Some(0));
        for i in 0..6 {
            assert_eq!(
                mt.read_message(i).outcome.ret(),
                Some(0),
                "round {round} msg {i}"
            );
        }
        assert_eq!(mt.move_message(0, b"archive").outcome.ret(), Some(0));
        assert_eq!(mt.message_count(), Some(5));
    }
}

/// A large-mailbox pass (the paper used >100,000 messages; we scale to
/// hundreds but keep the structure: bulk load, then full scan).
#[test]
fn mutt_large_mailbox_scan() {
    let mut mt = mutt::Mutt::boot(Mode::FailureOblivious, 0);
    for i in 0..60u64 {
        assert!(mt
            .add_message(
                &workload::from_field(i),
                format!("bulk {i}").as_bytes(),
                &workload::lorem(900, i),
            )
            .is_some());
    }
    assert_eq!(mt.open_folder(b"INBOX").outcome.ret(), Some(0));
    for i in 0..60 {
        assert_eq!(mt.read_message(i).outcome.ret(), Some(0), "msg {i}");
    }
    assert_eq!(mt.message_count(), Some(60));
}

/// Memory does not leak across a long failure-oblivious run: unit slots
/// and OOB descriptors are recycled, keeping live bookkeeping bounded.
#[test]
fn bookkeeping_stays_bounded_over_long_runs() {
    let mut sm = sendmail::Sendmail::boot(Mode::FailureOblivious);
    let mut peak_units = 0;
    for i in 0..200u64 {
        if i % 5 == 0 {
            sm.mail_from(&sendmail::attack_address(80));
        } else {
            sm.receive(
                &workload::sendmail_address(i),
                &workload::sendmail_address(999),
                b"steady state",
            );
        }
        peak_units = peak_units.max(sm.process().machine().space().live_units());
    }
    assert!(
        peak_units < 200,
        "live data units must stay bounded, peaked at {peak_units}"
    );
}
