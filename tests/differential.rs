//! Cross-mode differential tests.
//!
//! The paper's central semantic claims, stated as differential
//! properties over the five compiler/runtime versions:
//!
//! 1. **Benign traffic is mode-invariant.** For every server, requests
//!    that commit no memory error produce byte-identical output (return
//!    code and emitted bytes) under `Standard`, `BoundsCheck`,
//!    `FailureOblivious`, `Boundless`, and `Redirect` — checking and
//!    continuation change *when* the program survives, never *what* it
//!    computes on valid inputs. (Sendmail is the documented exception:
//!    its daemon wake-up itself errs, so the Bounds Check version is
//!    dead before the first benign request — §4.4.4.)
//! 2. **Attack traffic follows the §4 outcome matrix.** Standard
//!    versions die of segfault-like corruption, Bounds Check versions
//!    exit with a memory error (or are already dead at init), and the
//!    failure-oblivious version (and its §5.1 variants) survive and keep
//!    serving — with the FO version converting each attack into the
//!    anticipated error the paper reports.

use failure_oblivious::memory::Mode;
use failure_oblivious::servers::Outcome;
use failure_oblivious::servers::{apache, mc, mutt, pine, sendmail, workload};

/// What one request looked like to the client: return code + bytes.
type Observed = (Option<i64>, Vec<u8>);

fn observe(m: failure_oblivious::servers::Measured) -> Observed {
    (m.outcome.ret(), m.outcome.output().to_vec())
}

/// Asserts every mode's transcript equals Standard's, labelling the
/// first diverging step.
fn assert_transcripts_match(server: &str, transcripts: &[(Mode, Vec<Observed>)]) {
    let (base_mode, base) = &transcripts[0];
    for (mode, transcript) in &transcripts[1..] {
        assert_eq!(
            base.len(),
            transcript.len(),
            "{server}: {mode:?} transcript length differs from {base_mode:?}"
        );
        for (i, (a, b)) in base.iter().zip(transcript.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{server}: step {i} diverges between {base_mode:?} and {mode:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Benign differential transcripts.
// ---------------------------------------------------------------------

#[test]
fn apache_benign_output_is_mode_invariant() {
    let transcripts: Vec<(Mode, Vec<Observed>)> = Mode::ALL
        .into_iter()
        .map(|mode| {
            let mut w = apache::ApacheWorker::boot(mode);
            let steps = vec![
                observe(w.get(b"/index.html")),
                observe(w.get(b"/big.bin")),
                observe(w.get(b"/rw/index.html")),
                observe(w.get(&apache::rewrite_url(10))),
                observe(w.get(b"/missing.html")),
                observe(w.get(b"/index.html?q=1")),
            ];
            (mode, steps)
        })
        .collect();
    assert_transcripts_match("Apache", &transcripts);
}

#[test]
fn pine_benign_output_is_mode_invariant() {
    let transcripts: Vec<(Mode, Vec<Observed>)> = Mode::ALL
        .into_iter()
        .map(|mode| {
            let mut p = pine::Pine::boot(mode, pine::Pine::standard_mailbox(5));
            assert!(p.usable(), "{mode:?}: clean mailbox must load");
            let steps = vec![
                observe(p.read(0)),
                observe(p.read(4)),
                observe(p.compose()),
                observe(p.move_message(2)),
                observe(p.deliver(&workload::from_field(77), b"new mail", b"hello there")),
                observe(p.read(5)),
            ];
            (mode, steps)
        })
        .collect();
    assert_transcripts_match("Pine", &transcripts);
}

#[test]
fn sendmail_benign_output_is_mode_invariant_where_usable() {
    // §4.4.4: the Bounds Check daemon never survives initialization, so
    // the benign differential runs over the other four modes...
    let usable_modes = [
        Mode::Standard,
        Mode::FailureOblivious,
        Mode::Boundless,
        Mode::Redirect,
    ];
    let transcripts: Vec<(Mode, Vec<Observed>)> = usable_modes
        .into_iter()
        .map(|mode| {
            let mut sm = sendmail::Sendmail::boot(mode);
            assert!(sm.usable(), "{mode:?}: daemon must start");
            let steps = vec![
                observe(sm.receive(
                    &workload::sendmail_address(1),
                    &workload::sendmail_address(2),
                    b"first message body",
                )),
                observe(sm.send(&workload::sendmail_address(3), b"outbound body")),
                observe(sm.receive(
                    &workload::sendmail_address(4),
                    &workload::sendmail_address(5),
                    &workload::lorem(200, 42),
                )),
                (sm.delivered_count(), Vec::new()),
            ];
            (mode, steps)
        })
        .collect();
    assert_transcripts_match("Sendmail", &transcripts);

    // ...and the exception itself is part of the expected matrix.
    let bc = sendmail::Sendmail::boot(Mode::BoundsCheck);
    assert!(!bc.usable(), "Bounds Check sendmail must die at init");
    let Outcome::Crashed(f) = bc.init_outcome() else {
        panic!("expected init crash");
    };
    assert!(f.is_memory_error(), "got {f}");
}

#[test]
fn mc_benign_output_is_mode_invariant() {
    let transcripts: Vec<(Mode, Vec<Observed>)> = Mode::ALL
        .into_iter()
        .map(|mode| {
            let mut m = mc::Mc::boot(mode, &mc::clean_config());
            assert!(m.usable(), "{mode:?}: clean config must load");
            m.create(b"/tmp/a.txt", 4096, false);
            let steps = vec![
                observe(m.copy(b"/tmp/a.txt", b"/tmp/b.txt")),
                observe(m.move_file(b"/tmp/b.txt", b"/tmp/c.txt")),
                observe(m.mkdir(b"/tmp/newdir")),
                observe(m.component_end(b"usr/lib")),
                observe(m.delete(b"/tmp/c.txt")),
                observe(m.delete(b"/tmp/never-existed")),
            ];
            (mode, steps)
        })
        .collect();
    assert_transcripts_match("MC", &transcripts);
}

#[test]
fn mutt_benign_output_is_mode_invariant() {
    let transcripts: Vec<(Mode, Vec<Observed>)> = Mode::ALL
        .into_iter()
        .map(|mode| {
            let mut m = mutt::Mutt::boot(mode, 3);
            let steps = vec![
                observe(m.open_folder(b"INBOX")),
                observe(m.read_message(0)),
                observe(m.read_message(2)),
                observe(m.move_message(1, b"archive")),
                observe(m.open_folder(b"work")),
                // Malformed UTF-8 is an *anticipated* error: same rejection
                // in every mode, no memory error involved.
                observe(m.open_folder(&[0xC0, 0x80])),
            ];
            (mode, steps)
        })
        .collect();
    assert_transcripts_match("Mutt", &transcripts);
}

// ---------------------------------------------------------------------
// Attack outcome matrix (§4).
// ---------------------------------------------------------------------

#[test]
fn apache_attack_matrix() {
    // Standard: the offsets overflow smashes the child's stack.
    let mut w = apache::ApacheWorker::boot(Mode::Standard);
    let r = w.get(&apache::attack_url());
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Standard child must die, got {:?}", r.outcome);
    };
    assert!(f.is_segfault_like(), "got {f}");

    // Bounds Check: terminates with a memory error.
    let mut w = apache::ApacheWorker::boot(Mode::BoundsCheck);
    let r = w.get(&apache::attack_url());
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Bounds Check child must die, got {:?}", r.outcome);
    };
    assert!(f.is_memory_error(), "got {f}");

    // Failure Oblivious: the request is processed *correctly* (§4.3.2) —
    // identical to the in-bounds ten-segment rewrite.
    let mut w = apache::ApacheWorker::boot(Mode::FailureOblivious);
    assert_eq!(w.get(&apache::attack_url()).outcome.ret(), Some(200));
    assert_eq!(w.get(b"/index.html").outcome.ret(), Some(200));

    // The §5.1 variants also survive and keep serving.
    for mode in [Mode::Boundless, Mode::Redirect] {
        let mut w = apache::ApacheWorker::boot(mode);
        let r = w.get(&apache::attack_url());
        assert!(r.outcome.survived(), "{mode:?}: {:?}", r.outcome);
        assert_eq!(w.get(b"/index.html").outcome.ret(), Some(200), "{mode:?}");
    }
}

#[test]
fn pine_attack_matrix() {
    let poisoned = || {
        let mut mailbox = pine::Pine::standard_mailbox(4);
        mailbox.insert(2, (pine::attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
        mailbox
    };

    // Standard: heap corruption while loading the mail file.
    let p = pine::Pine::boot(Mode::Standard, poisoned());
    assert!(!p.usable());
    let Outcome::Crashed(f) = p.init_outcome() else {
        panic!("expected crash");
    };
    assert!(f.is_segfault_like(), "got {f}");

    // Bounds Check: memory-error exit, and restarts die the same way.
    let mut p = pine::Pine::boot(Mode::BoundsCheck, poisoned());
    assert!(!p.usable());
    let Outcome::Crashed(f) = p.init_outcome() else {
        panic!("expected termination");
    };
    assert!(f.is_memory_error(), "got {f}");
    p.restart();
    assert!(!p.usable(), "restart must die during init again (§4.7)");

    // Failure Oblivious: loads the poisoned mailbox, serves everything,
    // and renders the complete attack From field via the correct path.
    let mut p = pine::Pine::boot(Mode::FailureOblivious, poisoned());
    assert!(p.usable());
    let r = p.read(2);
    assert_eq!(r.outcome.ret(), Some(0));
    let shown = String::from_utf8_lossy(r.outcome.output()).to_string();
    assert!(shown.contains("attacker@evil.example"), "{shown}");

    // Variants: usable and serving.
    for mode in [Mode::Boundless, Mode::Redirect] {
        let mut p = pine::Pine::boot(mode, poisoned());
        assert!(p.usable(), "{mode:?} must survive the poisoned mailbox");
        assert_eq!(p.read(0).outcome.ret(), Some(0), "{mode:?}");
    }
}

#[test]
fn sendmail_attack_matrix() {
    // Standard: the prescan overflow smashes the stack with attacker
    // bytes (the modelled control-flow hijack).
    let mut sm = sendmail::Sendmail::boot(Mode::Standard);
    let r = sm.mail_from(&sendmail::attack_address(400));
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Standard sendmail must crash, got {:?}", r.outcome);
    };
    assert!(f.is_segfault_like(), "got {f}");

    // Bounds Check: already covered — dead at init (§4.4.4).

    // Failure Oblivious: the attack is rejected as the anticipated
    // "address too long" error (501) and service continues.
    let mut sm = sendmail::Sendmail::boot(Mode::FailureOblivious);
    assert_eq!(
        sm.mail_from(&sendmail::attack_address(120)).outcome.ret(),
        Some(501)
    );
    assert_eq!(
        sm.receive(
            &workload::sendmail_address(8),
            &workload::sendmail_address(9),
            b"after attack",
        )
        .outcome
        .ret(),
        Some(250)
    );

    // Variants: survive the attack and keep accepting mail.
    for mode in [Mode::Boundless, Mode::Redirect] {
        let mut sm = sendmail::Sendmail::boot(mode);
        assert!(sm.usable(), "{mode:?} daemon must start");
        let r = sm.mail_from(&sendmail::attack_address(120));
        assert!(r.outcome.survived(), "{mode:?}: {:?}", r.outcome);
        assert_eq!(
            sm.receive(
                &workload::sendmail_address(8),
                &workload::sendmail_address(9),
                b"after attack",
            )
            .outcome
            .ret(),
            Some(250),
            "{mode:?}"
        );
    }
}

#[test]
fn mc_attack_matrix() {
    // Standard: the symlink-path overflow escapes the frame.
    let mut m = mc::Mc::boot(Mode::Standard, &mc::clean_config());
    let r = m.open_archive(&mc::attack_links());
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Standard MC must crash, got {:?}", r.outcome);
    };
    assert!(f.is_segfault_like(), "got {f}");

    // Bounds Check: memory-error exit.
    let mut m = mc::Mc::boot(Mode::BoundsCheck, &mc::clean_config());
    let r = m.open_archive(&mc::attack_links());
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Bounds-Check MC must terminate, got {:?}", r.outcome);
    };
    assert!(f.is_memory_error(), "got {f}");

    // Failure Oblivious: every link dangles, MC keeps working (§4.5.2).
    let mut m = mc::Mc::boot(Mode::FailureOblivious, &mc::clean_config());
    let r = m.open_archive(&mc::attack_links());
    assert_eq!(r.outcome.ret(), Some(mc::attack_links().len() as i64));
    m.create(b"/tmp/x", 2048, false);
    assert_eq!(m.copy(b"/tmp/x", b"/tmp/y").outcome.ret(), Some(2048));

    // Variants: survive and keep working.
    for mode in [Mode::Boundless, Mode::Redirect] {
        let mut m = mc::Mc::boot(mode, &mc::clean_config());
        let r = m.open_archive(&mc::attack_links());
        assert!(r.outcome.survived(), "{mode:?}: {:?}", r.outcome);
        m.create(b"/tmp/x", 2048, false);
        assert_eq!(
            m.copy(b"/tmp/x", b"/tmp/y").outcome.ret(),
            Some(2048),
            "{mode:?}"
        );
    }
}

#[test]
fn mutt_attack_matrix() {
    // Standard: heap corruption from the Figure 1 overflow.
    let mut m = mutt::Mutt::boot(Mode::Standard, 2);
    let r = m.open_folder(&mutt::attack_folder_name(40));
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Standard Mutt must crash, got {:?}", r.outcome);
    };
    assert!(f.is_segfault_like(), "got {f}");

    // Bounds Check: memory-error exit.
    let mut m = mutt::Mutt::boot(Mode::BoundsCheck, 2);
    let r = m.open_folder(&mutt::attack_folder_name(40));
    let Outcome::Crashed(f) = &r.outcome else {
        panic!("Bounds-Check Mutt must terminate, got {:?}", r.outcome);
    };
    assert!(f.is_memory_error(), "got {f}");

    // Failure Oblivious: the attack folder is rejected as nonexistent —
    // the unanticipated attack becomes an anticipated error.
    let mut m = mutt::Mutt::boot(Mode::FailureOblivious, 2);
    assert_eq!(
        m.open_folder(&mutt::attack_folder_name(40)).outcome.ret(),
        Some(-1)
    );
    assert_eq!(m.open_folder(b"INBOX").outcome.ret(), Some(0));
    assert_eq!(m.read_message(0).outcome.ret(), Some(0));

    // Variants: survive and keep serving.
    for mode in [Mode::Boundless, Mode::Redirect] {
        let mut m = mutt::Mutt::boot(mode, 2);
        let r = m.open_folder(&mutt::attack_folder_name(40));
        assert!(r.outcome.survived(), "{mode:?}: {:?}", r.outcome);
        assert_eq!(m.open_folder(b"INBOX").outcome.ret(), Some(0), "{mode:?}");
    }
}
